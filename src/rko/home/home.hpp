// Sharded directory homes (DESIGN.md §14).
//
// Historically every page-ownership directory entry for process P lived at
// P's origin kernel, making the origin the serialization point for all
// faults, invalidations, and prefetch batches. The home Map decouples the
// two roles: a page's *home* — the kernel holding its directory entry and
// running its ownership transactions — is chosen by hashing the VPN into
// one of `shards` buckets and rendezvous-hashing each (pid, shard) pair
// over the currently-eligible kernels. With `shards == 1` every page's
// home is the origin and the wire protocol is bit-identical to the
// pre-home system; with more shards, faults on different pages resolve at
// different kernels in parallel.
//
// Eligibility is shrink-only: it starts as the boot membership (deferred
// kernels excluded) and loses kernels on death or part, but a later join
// never re-adds them. Every kernel applies the same membership events in
// the same order (elastic's broadcasts), so all live kernels agree on the
// map without extra coordination — and a shard's owner only ever changes
// when its current owner leaves, which is exactly the failover case the
// elastic reaper already handles for page frames.
#pragma once

#include <cstdint>

#include "rko/base/assert.hpp"
#include "rko/mem/types.hpp"
#include "rko/topo/topology.hpp"

namespace rko::home {

/// splitmix64 finalizer — cheap, well-mixed, and stable across platforms
/// (the map must hash identically on every kernel).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Per-kernel view of the home map. All kernels converge on identical
/// state because init() and remove_kernel() are driven by the same
/// (totally ordered) boot + membership events everywhere.
class Map {
public:
    /// Boot-time setup: `shards` directory shards spread over the kernels
    /// in `eligible` (the boot membership minus deferred kernels).
    void init(int shards, topo::KernelMask eligible) {
        RKO_ASSERT(shards >= 1);
        RKO_ASSERT(shards == 1 || eligible != 0);
        shards_ = shards;
        eligible_ = eligible;
    }

    /// True when home routing is active (more than one shard). The
    /// shards==1 configuration must behave — and speak — exactly like the
    /// pre-home system, so every new code path gates on this.
    bool sharded() const { return shards_ > 1; }
    int shards() const { return shards_; }
    topo::KernelMask eligible() const { return eligible_; }

    /// Which shard a virtual page number belongs to.
    int shard_of(std::uint64_t vpn) const {
        return sharded()
                   ? static_cast<int>(splitmix64(vpn) %
                                      static_cast<std::uint64_t>(shards_))
                   : 0;
    }

    /// The kernel owning (pid, shard) under the current eligibility.
    topo::KernelId owner_of(Pid pid, int shard) const {
        return owner_in(pid, shard, eligible_);
    }

    /// Rendezvous (highest-random-weight) owner of (pid, shard) among the
    /// kernels in `mask`. Pure so the elastic reaper can diff ownership
    /// before/after a membership change.
    static topo::KernelId owner_in(Pid pid, int shard, topo::KernelMask mask);

    /// Membership shrink: a dead or parted kernel stops owning shards.
    /// Idempotent; joins deliberately do NOT re-add (re-expansion would
    /// need a handoff protocol the failover path doesn't).
    void remove_kernel(topo::KernelId k) { eligible_ &= ~topo::kbit(k); }

private:
    int shards_ = 1;
    topo::KernelMask eligible_ = 0;
};

/// Default shard count for MachineConfig: the RKO_HOME_SHARDS environment
/// variable when set (clamped to >= 1), else 1 (home routing off).
int shards_from_env();

/// The home kernel for (pid, vpn): the origin when unsharded (or when the
/// eligible set somehow emptied — the origin is immortal), else the
/// rendezvous owner of the page's shard.
inline topo::KernelId home_of(const Map& map, Pid pid, topo::KernelId origin,
                              std::uint64_t vpn) {
    if (!map.sharded() || map.eligible() == 0) return origin;
    return Map::owner_in(pid, map.shard_of(vpn), map.eligible());
}

} // namespace rko::home
