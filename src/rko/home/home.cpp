#include "rko/home/home.hpp"

#include <bit>
#include <cstdlib>

namespace rko::home {

int shards_from_env() {
    const char* env = std::getenv("RKO_HOME_SHARDS");
    if (env == nullptr || *env == '\0') return 1;
    const int shards = std::atoi(env);
    return shards < 1 ? 1 : shards;
}

topo::KernelId Map::owner_in(Pid pid, int shard, topo::KernelMask mask) {
    RKO_ASSERT(mask != 0);
    // Highest-random-weight: every kernel scores (pid, shard) and the
    // maximum wins. When a kernel leaves, only the shards it owned move —
    // the minimal-disruption property that keeps failover local.
    const std::uint64_t key =
        splitmix64(static_cast<std::uint64_t>(pid) * 0x100000001b3ull ^
                   static_cast<std::uint64_t>(shard));
    topo::KernelId best = -1;
    std::uint64_t best_score = 0;
    for (topo::KernelMask m = mask; m != 0; m &= m - 1) {
        const auto k = static_cast<topo::KernelId>(std::countr_zero(m));
        const std::uint64_t score =
            splitmix64(key ^ (static_cast<std::uint64_t>(k) + 1) * 0x9e3779b9ull);
        if (best < 0 || score > best_score ||
            (score == best_score && k < best)) {
            best = k;
            best_score = score;
        }
    }
    return best;
}

} // namespace rko::home
