// SMP Linux baseline configuration.
//
// The paper compares the replicated kernel against symmetric
// shared-everything Linux. In this codebase SMP is the nkernels == 1
// machine configuration: one kernel instance spans every core, so every
// structure that is per-kernel in Popcorn becomes machine-global —
//
//   - one buddy frame allocator (Linux zone->lock),
//   - one futex table (Linux global futex hash),
//   - one runqueue lock,
//   - one mmap_lock per process shared by all its threads on all cores,
//
// which are exactly the contention points the evaluation measures. This
// header provides the canonical configuration plus helpers for reading the
// contention counters the benches report.
#pragma once

#include <cstdint>

#include "rko/api/machine.hpp"

namespace rko::smp {

/// MachineConfig for the SMP baseline on `ncores` cores. Costs are shared
/// with the replicated configuration so comparisons isolate the design,
/// not the constants.
inline api::MachineConfig smp_config(int ncores,
                                     std::size_t total_frames = 1u << 16) {
    api::MachineConfig config;
    config.ncores = ncores;
    config.nkernels = 1;
    config.frames_per_kernel = total_frames;
    return config;
}

/// Replicated-kernel configuration with the same total resources as
/// smp_config(ncores, total_frames) split over `nkernels` kernels.
inline api::MachineConfig popcorn_config(int ncores, int nkernels,
                                         std::size_t total_frames = 1u << 16) {
    api::MachineConfig config;
    config.ncores = ncores;
    config.nkernels = nkernels;
    config.frames_per_kernel =
        total_frames / static_cast<std::size_t>(nkernels);
    return config;
}

/// Virtual time spent queueing on the shared kernel locks — the
/// "contention bill" the paper's design removes. Aggregated across all
/// kernels so it is meaningful for any configuration.
struct ContentionReport {
    Nanos frame_allocator = 0;
    Nanos futex_buckets = 0;
    Nanos runqueue = 0;
    Nanos mmap_locks = 0;

    Nanos total() const {
        return frame_allocator + futex_buckets + runqueue + mmap_locks;
    }
};

ContentionReport contention_report(api::Machine& machine);

} // namespace rko::smp
