#include "rko/smp/smp.hpp"

#include "rko/core/dfutex.hpp"

namespace rko::smp {

ContentionReport contention_report(api::Machine& machine) {
    ContentionReport report;
    for (topo::KernelId k = 0; k < machine.nkernels(); ++k) {
        kernel::Kernel& kern = machine.kernel(k);
        report.frame_allocator += kern.frames().lock().wait_time();
        report.futex_buckets += kern.futex().bucket_wait_time();
        report.runqueue += kern.sched().rq_lock_wait();
        report.mmap_locks += kern.mmap_lock_wait_time();
    }
    return report;
}

} // namespace rko::smp
