#include "rko/race/race.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "rko/sim/actor.hpp"
#include "rko/sim/engine.hpp"

namespace rko::race {

namespace detail {

namespace {

bool from_env() {
    const char* env = std::getenv("RKO_RACE");
    if (env == nullptr || env[0] == '\0') return false;
    return !(env[0] == '0' && env[1] == '\0');
}

} // namespace

bool g_enabled = from_env();
bool g_armed = g_enabled;

} // namespace detail

namespace {

// Reports stay bounded even when a hot loop keeps re-triggering the same
// shape; past the cap only the dropped counter grows.
constexpr std::size_t kMaxFindings = 100;

struct HeldLock {
    const void* lock;
    LockKind kind;
    Nanos acquired_at;
};

/// One recorded-but-unaudited shadow-cell read.
struct ReadRec {
    const ShadowCell* cell;
    std::uint64_t version;              ///< cell version the read observed
    std::vector<const void*> locks;     ///< reader's lockset at read time
    Nanos at;
};

struct ActorState {
    std::vector<HeldLock> held;
    std::vector<ReadRec> reads;
};

/// A directed acquisition-order edge: some actor held `from` while
/// requesting `to`, in the context kept for the report.
struct OrderEdge {
    const void* to;
    std::string context; ///< "actor 'x' held A (t=..) requesting B (t=..)"
};

struct Detector {
    std::unordered_map<const sim::Actor*, ActorState> actors;
    std::unordered_map<const void*, std::vector<OrderEdge>> order;
    // Dedup sets so each edge exists once and each cycle reports once.
    std::unordered_set<std::uint64_t> edges_seen;
    std::unordered_set<std::uint64_t> cycles_reported;
    std::unordered_map<const void*, std::string> names;
    std::vector<Finding> findings;
    std::unordered_set<std::string> finding_keys;
    std::size_t dropped = 0;
};

Detector& det() {
    static Detector d;
    return d;
}

std::uint64_t pair_key(const void* a, const void* b) {
    const auto ha = reinterpret_cast<std::uintptr_t>(a);
    const auto hb = reinterpret_cast<std::uintptr_t>(b);
    return (static_cast<std::uint64_t>(ha) * 0x9e3779b97f4a7c15ULL) ^
           static_cast<std::uint64_t>(hb);
}

/// The current actor, or nullptr when running host-side (checkers, test
/// harness between runs) — every hook is a no-op there.
sim::Actor* current_or_null() {
    sim::Engine* engine = sim::current_engine();
    return engine == nullptr ? nullptr : engine->current_or_null();
}

const char* kind_name(LockKind kind) {
    switch (kind) {
    case LockKind::kSpin: return "spin";
    case LockKind::kRwWriter: return "rw-writer";
    case LockKind::kRwReader: return "rw-reader";
    }
    return "?";
}

std::string label_of(const void* lock) {
    auto it = det().names.find(lock);
    if (it != det().names.end()) return it->second;
    char buf[32];
    std::snprintf(buf, sizeof buf, "lock@%p", lock);
    return buf;
}

std::string locks_desc(const std::vector<const void*>& locks) {
    if (locks.empty()) return "{none}";
    std::string out = "{";
    for (const void* lock : locks) {
        if (out.size() > 1) out += ", ";
        out += label_of(lock);
    }
    out += "}";
    return out;
}

std::vector<const void*> lock_ptrs(const std::vector<HeldLock>& held) {
    std::vector<const void*> out;
    out.reserve(held.size());
    for (const HeldLock& h : held) out.push_back(h.lock);
    return out;
}

bool intersects(const std::vector<const void*>& a,
                const std::vector<const void*>& b) {
    for (const void* lock : a) {
        if (std::find(b.begin(), b.end(), lock) != b.end()) return true;
    }
    return false;
}

void report(const std::string& rule, const std::string& key,
            std::string detail_text) {
    Detector& d = det();
    if (!d.finding_keys.insert(rule + "|" + key).second) return;
    if (d.findings.size() >= kMaxFindings) {
        ++d.dropped;
        return;
    }
    d.findings.push_back(Finding{rule, std::move(detail_text)});
}

/// DFS: is `to` reachable from `from` in the order graph? Fills `path`
/// with the edges walked (for the cycle report).
bool reachable(const void* from, const void* to,
               std::unordered_set<const void*>& visited,
               std::vector<std::pair<const void*, const OrderEdge*>>& path) {
    if (!visited.insert(from).second) return false;
    auto it = det().order.find(from);
    if (it == det().order.end()) return false;
    for (const OrderEdge& edge : it->second) {
        path.emplace_back(from, &edge);
        if (edge.to == to) return true;
        if (reachable(edge.to, to, visited, path)) return true;
        path.pop_back();
    }
    return false;
}

/// Audits every pending read of `actor` against writes that landed since.
/// `when` names the audit point for the report ("resumed", "finished").
void audit_reads(const sim::Actor& actor, ActorState& state, const char* when) {
    const Nanos now = actor.now();
    auto keep = state.reads.begin();
    for (auto it = state.reads.begin(); it != state.reads.end(); ++it) {
        ReadRec& rec = *it;
        const ShadowCell* cell = rec.cell;
        if (cell->version_ == rec.version) {
            if (keep != it) *keep = std::move(rec); // self-move empties locks
            ++keep;
            continue;
        }
        // The reader's own write supersedes its read benignly; a foreign
        // write that shares a lock with the read means the discipline held
        // (the reader could not have been mid-decision at that write). In
        // both cases absorb the new version but keep the record — a later
        // unsynchronized write must still be caught.
        if (cell->last_writer_ == &actor ||
            intersects(rec.locks, cell->last_write_locks_)) {
            rec.version = cell->version_;
            if (keep != it) *keep = std::move(rec);
            ++keep;
            continue;
        }
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "%s: read by actor '%s' at t=%lld ns holding %s was superseded by "
            "a write from actor '%s' at t=%lld ns holding %s with no common "
            "lock, before the reader %s (audited at t=%lld ns)",
            cell->label_, actor.name().c_str(),
            static_cast<long long>(rec.at), locks_desc(rec.locks).c_str(),
            cell->last_writer_name_.c_str(),
            static_cast<long long>(cell->last_write_time_),
            locks_desc(cell->last_write_locks_).c_str(), when,
            static_cast<long long>(now));
        report("stale_read_across_await",
               std::string(cell->label_) + "|" + actor.name() + "|" +
                   cell->last_writer_name_,
               buf);
        // Drop the record: one report per stale read.
    }
    state.reads.erase(keep, state.reads.end());
}

} // namespace

void set_enabled(bool on) {
    detail::g_enabled = on;
    if (on) detail::g_armed = true;
}

void reset() {
    Detector& d = det();
    d.actors.clear();
    d.order.clear();
    d.edges_seen.clear();
    d.cycles_reported.clear();
    d.names.clear();
    d.findings.clear();
    d.finding_keys.clear();
    d.dropped = 0;
}

const std::vector<Finding>& findings() { return det().findings; }

std::size_t findings_dropped() { return det().dropped; }

std::string findings_to_string() {
    std::string out;
    for (const Finding& f : det().findings) {
        out += "  [race." + f.rule + "] " + f.detail + "\n";
    }
    if (det().dropped > 0) {
        out += "  (+" + std::to_string(det().dropped) + " findings dropped)\n";
    }
    return out;
}

void name_lock(const void* lock, std::string label) {
    if (!detail::g_enabled) return;
    det().names[lock] = std::move(label);
}

std::string lock_label(const void* lock) { return label_of(lock); }

void on_lock_request(const void* lock, LockKind kind) {
    (void)kind;
    sim::Actor* actor = current_or_null();
    if (actor == nullptr) return;
    Detector& d = det();
    auto it = d.actors.find(actor);
    if (it == d.actors.end() || it->second.held.empty()) return;
    for (const HeldLock& held : it->second.held) {
        if (held.lock == lock) continue; // rw upgrade/recursion: not an edge
        if (!d.edges_seen.insert(pair_key(held.lock, lock)).second) continue;
        char ctx[256];
        std::snprintf(ctx, sizeof ctx,
                      "actor '%s' acquired %s at t=%lld ns, then requested %s "
                      "at t=%lld ns",
                      actor->name().c_str(), label_of(held.lock).c_str(),
                      static_cast<long long>(held.acquired_at),
                      label_of(lock).c_str(),
                      static_cast<long long>(actor->now()));
        // Before inserting held.lock -> lock, see whether the reverse path
        // already exists: if so this edge closes a cycle.
        std::unordered_set<const void*> visited;
        std::vector<std::pair<const void*, const OrderEdge*>> path;
        if (reachable(lock, held.lock, visited, path) &&
            d.cycles_reported.insert(pair_key(held.lock, lock)).second) {
            std::string text = "potential deadlock: acquisition order cycle [";
            text += ctx;
            for (const auto& [from, edge] : path) {
                (void)from;
                text += "; ";
                text += edge->context;
            }
            text += "]";
            report("lock_cycle",
                   label_of(held.lock) + "|" + label_of(lock),
                   std::move(text));
        }
        d.order[held.lock].push_back(OrderEdge{lock, ctx});
    }
}

void on_lock_acquired(const void* lock, LockKind kind) {
    sim::Actor* actor = current_or_null();
    if (actor == nullptr) return;
    det().actors[actor].held.push_back(HeldLock{lock, kind, actor->now()});
}

void on_lock_released(const void* lock, LockKind kind) {
    sim::Actor* actor = current_or_null();
    if (actor == nullptr) return;
    Detector& d = det();
    auto it = d.actors.find(actor);
    if (it != d.actors.end()) {
        auto& held = it->second.held;
        for (auto h = held.rbegin(); h != held.rend(); ++h) {
            if (h->lock == lock && h->kind == kind) {
                held.erase(std::next(h).base());
                return;
            }
        }
    }
    // Not in the releaser's lockset: either some other actor acquired it
    // (a broken handoff — RwLock::unlock_shared has no owner tracking to
    // catch this itself) or nobody did.
    for (auto& [other, state] : d.actors) {
        if (other == actor) continue;
        auto& held = state.held;
        for (auto h = held.rbegin(); h != held.rend(); ++h) {
            if (h->lock != lock || h->kind != kind) continue;
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "%s (%s) released by actor '%s' at t=%lld ns but "
                          "acquired by actor '%s' at t=%lld ns",
                          label_of(lock).c_str(), kind_name(kind),
                          actor->name().c_str(),
                          static_cast<long long>(actor->now()),
                          other->name().c_str(),
                          static_cast<long long>(h->acquired_at));
            report("foreign_release",
                   label_of(lock) + "|" + actor->name() + "|" + other->name(),
                   buf);
            held.erase(std::next(h).base());
            return;
        }
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s (%s) released by actor '%s' at t=%lld ns but held by "
                  "no tracked actor",
                  label_of(lock).c_str(), kind_name(kind),
                  actor->name().c_str(), static_cast<long long>(actor->now()));
    report("unheld_release", label_of(lock) + "|" + actor->name(), buf);
}

void on_actor_resumed(sim::Actor& actor) {
    auto it = det().actors.find(&actor);
    if (it == det().actors.end() || it->second.reads.empty()) return;
    audit_reads(actor, it->second, "resumed");
}

void on_actor_finished(sim::Actor& actor) {
    Detector& d = det();
    auto it = d.actors.find(&actor);
    if (it == d.actors.end()) return;
    audit_reads(actor, it->second, "finished");
    d.actors.erase(it);
}

namespace detail {

void cell_read(const ShadowCell* cell) {
    if (cell->racy_ok_) return; // data_race()-style: exempt by policy
    sim::Actor* actor = current_or_null();
    if (actor == nullptr) return;
    ActorState& state = det().actors[actor];
    for (ReadRec& rec : state.reads) {
        if (rec.cell != cell) continue;
        rec.version = cell->version_;
        rec.locks = lock_ptrs(state.held);
        rec.at = actor->now();
        return;
    }
    state.reads.push_back(
        ReadRec{cell, cell->version_, lock_ptrs(state.held), actor->now()});
}

void cell_write(const ShadowCell* cell) {
    sim::Actor* actor = current_or_null();
    if (actor == nullptr) return;
    ++cell->version_;
    cell->last_writer_ = actor;
    cell->last_writer_name_ = actor->name();
    cell->last_write_time_ = actor->now();
    auto it = det().actors.find(actor);
    cell->last_write_locks_ =
        it == det().actors.end() ? std::vector<const void*>{}
                                 : lock_ptrs(it->second.held);
}

void cell_forget(const ShadowCell* cell) {
    for (auto& [actor, state] : det().actors) {
        (void)actor;
        auto& reads = state.reads;
        reads.erase(std::remove_if(reads.begin(), reads.end(),
                                   [cell](const ReadRec& rec) {
                                       return rec.cell == cell;
                                   }),
                    reads.end());
    }
}

} // namespace detail

} // namespace rko::race
