// Sim-aware race and lock-discipline detector (DESIGN.md §12).
//
// Host TSan cannot see the hazards that matter here: the simulator is
// single-host-threaded, so every "race" is a *logical* interleaving of
// cooperative actors across await points (any call that suspends the
// calling actor — rpc, sleep_for, park, lock acquisition). PR 6's
// kill_storm bug had exactly that shape: a futex registration sampled
// kernel liveness, parked on the fault protocol, and enqueued after the
// reaper's sweep had already run. This layer catches that class of bug
// mechanically, on every run, without perturbing virtual time:
//
//   lockset + lock-order — SpinLock/RwLock hooks maintain each actor's
//       held-lock set and a global acquisition-order graph. A cycle in
//       the graph is a potential deadlock; a guard released by an actor
//       other than its acquirer is a broken handoff. Both are reported
//       with the sim context (actor, virtual time) of every edge.
//   await-atomicity — protocol structs embed ShadowCell markers next to
//       their shared state. on_read()/on_write() record (actor, version,
//       lockset). A read that is superseded by another actor's write
//       before the reading actor resumes — with no lock common to the
//       read and the write — is a stale-read-across-await: the reader is
//       about to act on state that changed under it.
//
// Everything is gated on RKO_RACE (or set_enabled()): one branch on a
// plain bool per hook when off, and no virtual-time cost ever — the
// detector runs host-side only, so replay hashes and bench JSON are
// bit-identical whether it is armed or not. Findings surface through the
// rko/check registry as the "race" invariant family.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rko/base/units.hpp"

namespace rko::sim {
class Actor;
}

namespace rko::race {

class ShadowCell;

namespace detail {
extern bool g_enabled; ///< single-host-threaded, so a plain bool suffices
extern bool g_armed;   ///< ever enabled this process (guards cleanup hooks)
void cell_read(const ShadowCell* cell);
void cell_write(const ShadowCell* cell);
void cell_forget(const ShadowCell* cell);
} // namespace detail

/// Whether detector hooks should record. Static init snapshots the
/// RKO_RACE environment variable (same grammar as RKO_CHECK);
/// set_enabled() overrides it afterwards.
inline bool enabled() { return detail::g_enabled; }

/// Forces the detector on or off (tests, rko_explore --race). Turning it
/// on mid-process requires a reset() to drop half-recorded state;
/// api::Machine construction does that automatically.
void set_enabled(bool on);

/// Drops all recorded state: locksets, order graph, pending reads,
/// findings, lock names. Called by api::Machine's constructor when the
/// detector is enabled, so every machine starts with a clean slate.
void reset();

/// One detector report. `rule` is the finding class — "lock_cycle",
/// "foreign_release", "unheld_release", "stale_read_across_await" — and
/// `detail` carries the sim context of both sides.
struct Finding {
    std::string rule;
    std::string detail;
};

const std::vector<Finding>& findings();
/// Findings dropped past the per-run cap (reports stay bounded even if a
/// hot loop keeps re-triggering).
std::size_t findings_dropped();
/// One line per finding, for test failure messages and stderr.
std::string findings_to_string();

/// Attaches a human-readable label to a lock address so reports can say
/// "futex.bucket[17]@k0" instead of a pointer. No-op while disabled.
void name_lock(const void* lock, std::string label);
/// The registered label, or "lock@<ptr>" if none.
std::string lock_label(const void* lock);

/// How a lock was held — RwLock reader and writer sides are tracked as
/// distinct acquisitions of the same lock address.
enum class LockKind : std::uint8_t { kSpin, kRwWriter, kRwReader };

// --- Hooks wired into rko/sim (not for protocol code) ---------------------
// sync.cpp calls the lock trio from SpinLock/RwLock; actor.cpp calls the
// actor pair after every suspension returns and when a body finishes.
// All of them no-op outside actor context.

/// Before an acquisition may block: records held-lock -> requested-lock
/// order edges and reports any cycle they close.
void on_lock_request(const void* lock, LockKind kind);
/// The acquisition succeeded: adds the lock to the actor's lockset.
void on_lock_acquired(const void* lock, LockKind kind);
/// Removes the lock from the releasing actor's lockset; a release of an
/// entry some *other* actor holds is reported as foreign_release.
void on_lock_released(const void* lock, LockKind kind);

/// The actor came back from a suspension: audit its pending shadow-cell
/// reads against writes that landed meanwhile.
void on_actor_resumed(sim::Actor& actor);
/// Final audit + state drop when an actor's body finishes.
void on_actor_finished(sim::Actor& actor);

/// One unit of await-atomicity-checked shared state, embedded next to the
/// real data it shadows (a futex bucket's queue, a directory shard's
/// entry map). Protocol code calls on_read() where it samples the state
/// to make a decision and on_write() where it mutates it; the detector
/// flags any read superseded across an await by another actor's write
/// that shares no lock with it.
///
/// Policy::kRacyOk marks state that is *intentionally* unsynchronized
/// (the ssi load table's stamped rows, elastic membership views): writes
/// are recorded so version counters stay meaningful, reads are exempt
/// from staleness checks — the sim equivalent of Linux's data_race().
class ShadowCell {
public:
    enum class Policy : std::uint8_t { kGuarded, kRacyOk };

    explicit ShadowCell(const char* label, Policy policy = Policy::kGuarded)
        : label_(label), racy_ok_(policy == Policy::kRacyOk) {}
    ShadowCell(const ShadowCell&) = delete;
    ShadowCell& operator=(const ShadowCell&) = delete;
    ~ShadowCell() {
        // Purge dangling pending-read records (a dropped site's shards die
        // while kworkers still hold reads of them). Only ever non-trivial
        // after the detector has been armed once.
        if (detail::g_armed) detail::cell_forget(this);
    }

    void on_read() const {
        if (detail::g_enabled) detail::cell_read(this);
    }
    void on_write() const {
        if (detail::g_enabled) detail::cell_write(this);
    }

    const char* label() const { return label_; }
    bool racy_ok() const { return racy_ok_; }
    /// Writes recorded while the detector was enabled (tests).
    std::uint64_t version() const { return version_; }

    // Detector bookkeeping, public for race.cpp only; protocol code uses
    // nothing below. Mutable: cells sit inside otherwise-const protocol
    // structs and the shadow state is host-side, not simulated data.
    const char* label_;
    bool racy_ok_;
    mutable std::uint64_t version_ = 0;
    mutable const sim::Actor* last_writer_ = nullptr;
    mutable std::string last_writer_name_;
    mutable Nanos last_write_time_ = -1;
    mutable std::vector<const void*> last_write_locks_;
};

} // namespace rko::race
