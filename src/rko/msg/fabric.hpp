// The full inter-kernel interconnect: one Node per kernel and one directed
// Channel per ordered kernel pair (the N×N mesh Popcorn lays out in shared
// memory at boot).
#pragma once

#include <memory>
#include <vector>

#include "rko/msg/channel.hpp"
#include "rko/msg/node.hpp"
#include "rko/topo/topology.hpp"

namespace rko::msg {

struct FabricConfig {
    int nworkers_per_node = 4;       ///< kworker actors per kernel
    std::size_t channel_capacity = 4096; ///< slots per directed channel
    /// Race-detector knob (rko_explore): each message's delivery gains an
    /// extra delay uniform in [0, delivery_jitter] ns, drawn per channel
    /// from jitter_seed. Per-channel visibility stays monotone (clamped),
    /// so FIFO within a channel is preserved while cross-channel arrival
    /// races are perturbed. 0 = off (the default; no timing change).
    Nanos delivery_jitter = 0;
    std::uint64_t jitter_seed = 0;
};

class Fabric {
public:
    Fabric(sim::Engine& engine, const topo::CostModel& costs, int nkernels,
           FabricConfig config = {});
    Fabric(const Fabric&) = delete;
    Fabric& operator=(const Fabric&) = delete;

    int nkernels() const { return static_cast<int>(nodes_.size()); }
    Node& node(KernelId id);
    Channel& channel(KernelId src, KernelId dst);

    /// Every kernel id except `self`; the usual broadcast target list.
    std::vector<KernelId> peers_of(KernelId self) const;

    void start_all();
    void request_stop_all();
    bool all_stopped() const;

    /// Aggregate message count across all channels.
    std::uint64_t total_messages() const;
    std::uint64_t total_bytes() const;

private:
    std::vector<std::unique_ptr<Node>> nodes_;
    // channels_[src * n + dst]; null on the diagonal.
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace rko::msg
