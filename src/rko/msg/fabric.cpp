#include "rko/msg/fabric.hpp"

namespace rko::msg {

Fabric::Fabric(sim::Engine& engine, const topo::CostModel& costs, int nkernels,
               FabricConfig config) {
    RKO_ASSERT(nkernels >= 1);
    nodes_.reserve(static_cast<std::size_t>(nkernels));
    for (KernelId k = 0; k < nkernels; ++k) {
        nodes_.push_back(
            std::make_unique<Node>(engine, costs, k, config.nworkers_per_node));
    }
    channels_.resize(static_cast<std::size_t>(nkernels) * static_cast<std::size_t>(nkernels));
    for (KernelId src = 0; src < nkernels; ++src) {
        for (KernelId dst = 0; dst < nkernels; ++dst) {
            if (src == dst) continue;
            Node* receiver = nodes_[static_cast<std::size_t>(dst)].get();
            auto channel = std::make_unique<Channel>(
                engine, costs, src, dst, config.channel_capacity,
                [receiver] { receiver->doorbell(); });
            if (config.delivery_jitter > 0) {
                // Distinct deterministic stream per directed channel.
                const std::uint64_t stream =
                    static_cast<std::uint64_t>(src) * 64 +
                    static_cast<std::uint64_t>(dst);
                channel->set_delivery_jitter(
                    config.delivery_jitter,
                    config.jitter_seed * 0x9e3779b97f4a7c15ULL + stream);
            }
            receiver->attach_inbound(*channel);
            nodes_[static_cast<std::size_t>(src)]->attach_outbound(dst, *channel);
            channels_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nkernels) +
                      static_cast<std::size_t>(dst)] = std::move(channel);
        }
    }
}

Node& Fabric::node(KernelId id) {
    RKO_ASSERT(id >= 0 && id < nkernels());
    return *nodes_[static_cast<std::size_t>(id)];
}

Channel& Fabric::channel(KernelId src, KernelId dst) {
    RKO_ASSERT(src != dst && src >= 0 && dst >= 0 && src < nkernels() && dst < nkernels());
    return *channels_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nkernels()) +
                      static_cast<std::size_t>(dst)];
}

std::vector<KernelId> Fabric::peers_of(KernelId self) const {
    std::vector<KernelId> peers;
    peers.reserve(nodes_.size() - 1);
    for (KernelId k = 0; k < nkernels(); ++k) {
        if (k != self) peers.push_back(k);
    }
    return peers;
}

void Fabric::start_all() {
    for (auto& node : nodes_) node->start();
}

void Fabric::request_stop_all() {
    for (auto& node : nodes_) node->request_stop();
}

bool Fabric::all_stopped() const {
    for (const auto& node : nodes_) {
        if (!node->stopped()) return false;
    }
    return true;
}

std::uint64_t Fabric::total_messages() const {
    std::uint64_t total = 0;
    for (const auto& channel : channels_) {
        if (channel) total += channel->sent();
    }
    return total;
}

std::uint64_t Fabric::total_bytes() const {
    std::uint64_t total = 0;
    for (const auto& channel : channels_) {
        if (channel) total += channel->bytes_sent();
    }
    return total;
}

} // namespace rko::msg
