#include "rko/msg/message.hpp"

namespace rko::msg {

const char* msg_type_name(MsgType type) {
    switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kRemoteClone: return "remote_clone";
    case MsgType::kMigrate: return "migrate";
    case MsgType::kMigrateBack: return "migrate_back";
    case MsgType::kTaskExit: return "task_exit";
    case MsgType::kGroupUpdate: return "group_update";
    case MsgType::kGroupExit: return "group_exit";
    case MsgType::kVmaOp: return "vma_op";
    case MsgType::kVmaFetch: return "vma_fetch";
    case MsgType::kVmaUpdate: return "vma_update";
    case MsgType::kPageFault: return "page_fault";
    case MsgType::kPageFetch: return "page_fetch";
    case MsgType::kPageInvalidate: return "page_invalidate";
    case MsgType::kPageInstalled: return "page_installed";
    case MsgType::kFutexWait: return "futex_wait";
    case MsgType::kFutexWake: return "futex_wake";
    case MsgType::kFutexGrant: return "futex_grant";
    case MsgType::kFutexCancel: return "futex_cancel";
    case MsgType::kFutexGrantBatch: return "futex_grant_batch";
    case MsgType::kFutexDeregister: return "futex_deregister";
    case MsgType::kTaskCensus: return "task_census";
    case MsgType::kLoadReport: return "load_report";
    case MsgType::kLoadGossip: return "load_gossip";
    case MsgType::kSteal: return "steal";
    case MsgType::kPageInvalidateRange: return "page_invalidate_range";
    case MsgType::kPageFaultBatch: return "page_fault_batch";
    case MsgType::kPagePush: return "page_push";
    case MsgType::kMembershipUpdate: return "membership_update";
    case MsgType::kElasticEvict: return "elastic_evict";
    case MsgType::kHomeRangeOp: return "home_range_op";
    case MsgType::kHomeRebuild: return "home_rebuild";
    case MsgType::kWorksetPull: return "workset_pull";
    case MsgType::kWorksetPush: return "workset_push";
    case MsgType::kCount: break;
    }
    return "unknown";
}

} // namespace rko::msg
