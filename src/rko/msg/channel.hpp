// One directed inter-kernel channel: a bounded ring of message slots with
// sender backpressure, modeled slot-publish cost, payload copy bandwidth,
// and optional wire latency. There is one channel per ordered kernel pair,
// as in Popcorn's shared-memory messaging layer.
#pragma once

#include <deque>
#include <functional>

#include "rko/base/rng.hpp"
#include "rko/base/stats.hpp"
#include "rko/msg/message.hpp"
#include "rko/sim/sync.hpp"
#include "rko/topo/topology.hpp"

namespace rko::msg {

class Channel {
public:
    /// `on_delivery` is the receiving kernel's doorbell: invoked after a
    /// message becomes visible, with the time it became visible.
    Channel(sim::Engine& engine, const topo::CostModel& costs, KernelId src,
            KernelId dst, std::size_t capacity, std::function<void()> on_delivery);

    KernelId src() const { return src_; }
    KernelId dst() const { return dst_; }

    /// Publishes a message. Charges the sending actor the slot-publish cost
    /// plus the payload copy; blocks (backpressure) while the ring is full.
    void send(MessagePtr message);

    /// Pops the oldest message already visible at the current virtual time;
    /// returns null if the channel is empty or the head is still in flight.
    MessagePtr try_pop();

    /// Virtual time when the head message becomes visible; -1 if empty.
    Nanos head_ready_at() const;

    bool empty() const { return ring_.empty(); }
    std::size_t depth() const { return ring_.size(); }
    std::size_t capacity() const { return capacity_; }
    /// In-flight messages, oldest first (rko/check FIFO/quiescence audits).
    const std::deque<MessagePtr>& queued() const { return ring_; }

    std::uint64_t sent() const { return sent_; }
    std::uint64_t bytes_sent() const { return bytes_; }
    Nanos backpressure_time() const { return backpressure_time_; }

    /// Enables seeded delivery jitter (see FabricConfig::delivery_jitter);
    /// called by Fabric at construction. Ready times stay monotone per
    /// channel, so FIFO delivery order is unaffected.
    void set_delivery_jitter(Nanos max_jitter, std::uint64_t seed) {
        jitter_ = max_jitter;
        jitter_rng_.reseed(seed);
    }

private:
    sim::Engine& engine_;
    const topo::CostModel& costs_;
    KernelId src_;
    KernelId dst_;
    std::size_t capacity_;
    std::function<void()> on_delivery_;
    std::deque<MessagePtr> ring_;
    sim::WaitList senders_; ///< actors blocked on a full ring
    std::uint64_t sent_ = 0;
    std::uint64_t bytes_ = 0;
    Nanos backpressure_time_ = 0;
    Nanos jitter_ = 0;            ///< max extra delivery delay; 0 = off
    base::Rng jitter_rng_{0};
    Nanos last_ready_ = 0;        ///< monotone clamp preserving channel FIFO
};

} // namespace rko::msg
