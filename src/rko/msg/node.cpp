#include "rko/msg/node.hpp"

#include <algorithm>
#include <utility>

#include "rko/base/log.hpp"
#include "rko/trace/trace.hpp"

namespace rko::msg {

const char* rpc_status_name(RpcStatus status) {
    switch (status) {
    case RpcStatus::kOk: return "ok";
    case RpcStatus::kPeerDead: return "peer-dead";
    case RpcStatus::kTimeout: return "timeout";
    }
    return "?";
}

Node::Node(sim::Engine& engine, const topo::CostModel& costs, KernelId id, int nworkers)
    : engine_(engine), costs_(costs), id_(id) {
    dispatcher_ = std::make_unique<sim::Actor>(
        engine_, "k" + std::to_string(id) + "/dispatcher",
        [this](sim::Actor& self) { dispatcher_body(self); });
    spawn_workers(blocking_pool_, nworkers, "kworker");
    // Leaf handlers only wait on short local locks, so a small pool keeps
    // up; two avoids head-of-line blocking behind one slow lock.
    spawn_workers(leaf_pool_, std::max(2, nworkers / 2), "kleaf");
}

Node::~Node() = default;

void Node::spawn_workers(Pool& pool, int count, const char* tag) {
    for (int w = 0; w < count; ++w) {
        pool.workers.push_back(std::make_unique<sim::Actor>(
            engine_, "k" + std::to_string(id_) + "/" + tag + std::to_string(w),
            [this, &pool](sim::Actor& self) { worker_body(self, pool); }));
    }
}

void Node::register_handler(MsgType type, HandlerClass handler_class, Handler handler) {
    auto& entry = handlers_[static_cast<std::size_t>(type)];
    RKO_ASSERT_MSG(!entry.registered, "handler registered twice");
    entry = HandlerEntry{std::move(handler), handler_class, true};
}

void Node::attach_inbound(Channel& channel) {
    RKO_ASSERT(channel.dst() == id_);
    inbound_.push_back(&channel);
}

void Node::attach_outbound(KernelId dst, Channel& channel) {
    RKO_ASSERT(channel.src() == id_ && channel.dst() == dst);
    outbound_.emplace(dst, &channel);
}

void Node::start() {
    dispatcher_->start();
    for (auto& worker : blocking_pool_.workers) worker->start();
    for (auto& worker : leaf_pool_.workers) worker->start();
}

void Node::request_stop() {
    stop_requested_ = true;
    dispatcher_->unpark();
    blocking_pool_.idle.notify_all();
    leaf_pool_.idle.notify_all();
}

bool Node::stopped() const {
    if (!dispatcher_->finished()) return false;
    const auto finished = [](const auto& w) { return w->finished(); };
    return std::all_of(blocking_pool_.workers.begin(), blocking_pool_.workers.end(),
                       finished) &&
           std::all_of(leaf_pool_.workers.begin(), leaf_pool_.workers.end(), finished);
}

bool Node::is_leaf_worker(const sim::Actor* actor) const {
    return std::any_of(leaf_pool_.workers.begin(), leaf_pool_.workers.end(),
                       [actor](const auto& w) { return w.get() == actor; });
}

void Node::send(KernelId dst, MessagePtr message) {
    RKO_ASSERT_MSG(dst != id_, "no loopback channel; callers must skip self");
    if (dead_ || dead_peers_.count(dst) != 0) {
        ++dead_letters_;
        return;
    }
    auto it = outbound_.find(dst);
    RKO_ASSERT_MSG(it != outbound_.end(), "no channel to destination kernel");
    it->second->send(std::move(message));
}

MessagePtr Node::finish_rpc(PendingReply& slot, RpcStatus* status) {
    // A kill of THIS node fails every pending ticket; the fiber must
    // unwind, not interpret the failure as a dead peer.
    if (dead_) throw LocalNodeDead{};
    if (slot.status != RpcStatus::kOk) {
        RKO_ASSERT_MSG(status != nullptr,
                       "rpc destination died and the caller cannot handle it");
        *status = slot.status;
        return nullptr;
    }
    if (status != nullptr) *status = RpcStatus::kOk;
    RKO_ASSERT(slot.reply != nullptr);
    return std::move(slot.reply);
}

MessagePtr Node::rpc(KernelId dst, MessagePtr request, RpcStatus* status) {
    sim::Actor& self = engine_.current();
    // Inline handlers run on the dispatcher; leaf handlers on leaf workers.
    // Neither may await a reply (the discipline in the file comment).
    RKO_ASSERT_MSG(&self != dispatcher_.get(), "dispatcher must never block on rpc");
    RKO_ASSERT_MSG(!is_leaf_worker(&self), "leaf handlers must never rpc");
    if (dead_) throw LocalNodeDead{};
    if (dead_peers_.count(dst) != 0) {
        ++rpc_failures_;
        RKO_ASSERT_MSG(status != nullptr,
                       "rpc destination is dead and the caller cannot handle it");
        *status = RpcStatus::kPeerDead;
        return nullptr;
    }

    PendingReply slot;
    slot.waiter = &self;
    slot.outstanding = 1;
    request->hdr.kind = MsgKind::kRequest;
    request->hdr.ticket = next_ticket_++;
    pending_.emplace(request->hdr.ticket, &slot);
    ticket_dst_.emplace(request->hdr.ticket, dst);

    send(dst, std::move(request));
    while (slot.outstanding > 0) self.park();
    return finish_rpc(slot, status);
}

MessagePtr Node::rpc_timed(KernelId dst, MessagePtr request, Nanos timeout,
                           RpcStatus* status) {
    sim::Actor& self = engine_.current();
    RKO_ASSERT_MSG(&self != dispatcher_.get(), "dispatcher must never block on rpc");
    RKO_ASSERT_MSG(!is_leaf_worker(&self), "leaf handlers must never rpc");
    RKO_ASSERT(timeout > 0);
    if (dead_) throw LocalNodeDead{};
    if (dead_peers_.count(dst) != 0) {
        ++rpc_failures_;
        RKO_ASSERT_MSG(status != nullptr,
                       "rpc destination is dead and the caller cannot handle it");
        *status = RpcStatus::kPeerDead;
        return nullptr;
    }

    PendingReply slot;
    slot.waiter = &self;
    slot.outstanding = 1;
    request->hdr.kind = MsgKind::kRequest;
    const std::uint64_t ticket = next_ticket_++;
    request->hdr.ticket = ticket;
    pending_.emplace(ticket, &slot);
    ticket_dst_.emplace(ticket, dst);

    send(dst, std::move(request));
    const Nanos deadline = engine_.now() + timeout;
    while (slot.outstanding > 0) {
        const Nanos remaining = deadline - engine_.now();
        if (remaining <= 0) break;
        self.park_for(remaining);
    }
    if (slot.outstanding > 0 && !dead_) {
        // Timed out: withdraw the ticket and tombstone it so the late reply
        // (if the peer is merely slow, not dead) is dropped, not asserted.
        pending_.erase(ticket);
        ticket_dst_.erase(ticket);
        cancelled_.insert(ticket);
        ++rpc_failures_;
        RKO_ASSERT_MSG(status != nullptr,
                       "rpc timed out and the caller cannot handle it");
        *status = RpcStatus::kTimeout;
        return nullptr;
    }
    return finish_rpc(slot, status);
}

std::vector<MessagePtr> Node::rpc_all(const std::vector<KernelId>& dsts,
                                      const Message& request) {
    std::vector<ScatterItem> items;
    items.reserve(dsts.size());
    for (const KernelId dst : dsts) {
        items.push_back({dst, std::make_unique<Message>(request)});
    }
    return rpc_scatter(std::move(items));
}

std::vector<MessagePtr> Node::rpc_scatter(std::vector<ScatterItem> items) {
    sim::Actor& self = engine_.current();
    RKO_ASSERT_MSG(&self != dispatcher_.get(), "dispatcher must never block on rpc");
    RKO_ASSERT_MSG(!is_leaf_worker(&self), "leaf handlers must never rpc");
    if (dead_) throw LocalNodeDead{};
    std::vector<MessagePtr> replies(items.size());
    if (items.empty()) return replies;

    PendingReply slot;
    slot.waiter = &self;
    slot.outstanding = static_cast<int>(items.size());
    slot.sink = &replies;

    ++scatter_batches_;
    scatter_posts_ += items.size();
    scatter_fanout_.add(static_cast<Nanos>(items.size()));
    for (std::size_t i = 0; i < items.size(); ++i) {
        // Channel::send yields (publish cost, backpressure), so the node
        // can be killed mid-loop. set_dead already failed every ticket
        // posted so far; a ticket emplaced after that sweep would be
        // orphaned — its send drops silently and no reply or failure ever
        // decrements outstanding — so stop posting and unwind instead.
        if (dead_) throw LocalNodeDead{};
        if (dead_peers_.count(items[i].dst) != 0) {
            // Known-dead destination: its reply slot stays null.
            --slot.outstanding;
            ++rpc_failures_;
            slot.status = RpcStatus::kPeerDead;
            continue;
        }
        MessagePtr request = std::move(items[i].request);
        request->hdr.kind = MsgKind::kRequest;
        request->hdr.ticket = next_ticket_++;
        pending_.emplace(request->hdr.ticket, &slot);
        ticket_index_.emplace(request->hdr.ticket, i);
        ticket_dst_.emplace(request->hdr.ticket, items[i].dst);
        send(items[i].dst, std::move(request));
    }
    const Nanos wait_start = engine_.now();
    while (slot.outstanding > 0) self.park();
    if (dead_) throw LocalNodeDead{};
    scatter_wait_.add(engine_.now() - wait_start);
    return replies;
}

void Node::reply(const Message& request, MessagePtr response) {
    RKO_ASSERT(request.hdr.kind == MsgKind::kRequest);
    response->hdr.kind = MsgKind::kReply;
    response->hdr.ticket = request.hdr.ticket;
    send(request.hdr.src, std::move(response));
}

void Node::complete_reply(MessagePtr message) {
    const std::uint64_t ticket = message->hdr.ticket;
    auto it = pending_.find(ticket);
    if (it == pending_.end()) {
        // A reply can legitimately outlive its ticket: rpc_timed withdrew
        // it, or peer-death failed it while the reply (sent pre-death) was
        // already in flight. Both tombstone the ticket; drop the straggler.
        RKO_ASSERT_MSG(cancelled_.erase(ticket) != 0, "reply for unknown ticket");
        ++dead_letters_;
        return;
    }
    PendingReply* slot = it->second;
    pending_.erase(it);
    ticket_dst_.erase(ticket);

    if (slot->sink != nullptr) {
        auto idx_it = ticket_index_.find(ticket);
        RKO_ASSERT(idx_it != ticket_index_.end());
        (*slot->sink)[idx_it->second] = std::move(message);
        ticket_index_.erase(idx_it);
    } else {
        slot->reply = std::move(message);
    }
    if (--slot->outstanding == 0) slot->waiter->unpark();
}

void Node::fail_ticket(std::uint64_t ticket, RpcStatus status) {
    auto it = pending_.find(ticket);
    if (it == pending_.end()) return;
    PendingReply* slot = it->second;
    pending_.erase(it);
    ticket_dst_.erase(ticket);
    ticket_index_.erase(ticket); // a scatter slot's reply entry stays null
    cancelled_.insert(ticket);   // drop the reply if it was already in flight
    slot->status = status;
    ++rpc_failures_;
    if (--slot->outstanding == 0) slot->waiter->unpark();
}

void Node::fail_pending(KernelId dead) {
    std::vector<std::uint64_t> victims;
    for (const auto& [ticket, dst] : ticket_dst_) {
        if (dst == dead) victims.push_back(ticket);
    }
    // Deterministic unpark order (ticket_dst_ iteration order is not).
    std::sort(victims.begin(), victims.end());
    for (const std::uint64_t ticket : victims) {
        fail_ticket(ticket, RpcStatus::kPeerDead);
    }
}

void Node::set_peer_dead(KernelId dead) {
    RKO_ASSERT(dead != id_);
    dead_peers_.insert(dead);
    fail_pending(dead);
}

void Node::set_dead() {
    if (dead_) return;
    dead_ = true;
    std::vector<std::uint64_t> victims;
    victims.reserve(pending_.size());
    for (const auto& [ticket, slot] : pending_) victims.push_back(ticket);
    std::sort(victims.begin(), victims.end());
    for (const std::uint64_t ticket : victims) {
        fail_ticket(ticket, RpcStatus::kPeerDead);
    }
    // Queued handler work dies with the node; the pools only drain.
    blocking_pool_.queue.clear();
    leaf_pool_.queue.clear();
    doorbell();
}

MessagePtr Node::scan_inbound() {
    if (inbound_.empty()) return nullptr;
    for (std::size_t i = 0; i < inbound_.size(); ++i) {
        Channel* channel = inbound_[(scan_cursor_ + i) % inbound_.size()];
        if (MessagePtr m = channel->try_pop()) {
            scan_cursor_ = (scan_cursor_ + i + 1) % inbound_.size();
            return m;
        }
    }
    return nullptr;
}

Nanos Node::earliest_pending() const {
    Nanos earliest = -1;
    for (const Channel* channel : inbound_) {
        const Nanos at = channel->head_ready_at();
        if (at >= 0 && (earliest < 0 || at < earliest)) earliest = at;
    }
    return earliest;
}

void Node::dispatcher_body(sim::Actor& self) {
    for (;;) {
        MessagePtr message = scan_inbound();
        if (message == nullptr) {
            const Nanos next = earliest_pending();
            if (next < 0) {
                if (stop_requested_) break;
                dispatcher_idle_ = true;
                self.park();
                dispatcher_idle_ = false;
                continue;
            }
            self.sleep_for(std::max<Nanos>(1, next - self.now()));
            continue;
        }
        self.sleep_for(costs_.msg_dispatch);
        route(std::move(message));
    }
}

void Node::note_flow_end(const Message& message, const char* name) {
    if (message.trace_flow == 0) return;
    if (trace::Tracer* tr = trace::active(engine_)) {
        tr->flow_end(engine_, id_, name, message.trace_flow);
    }
}

void Node::route(MessagePtr message) {
    const auto type_index = static_cast<std::size_t>(message->hdr.type);
    RKO_ASSERT(type_index < kNumMsgTypes);
    if (dead_) {
        // Black hole: a dead kernel's inbound channels keep draining (the
        // fabric stays well-formed, teardown is unchanged) but nothing is
        // handled and no replies are ever produced.
        ++dead_letters_;
        return;
    }
    ++dispatched_[type_index];
    delivery_latency_.add(engine_.now() - message->ready_at);
    const char* name = msg_type_name(message->hdr.type);

    if (message->hdr.kind == MsgKind::kReply) {
        trace::Span span(engine_, id_, name);
        note_flow_end(*message, name);
        complete_reply(std::move(message));
        return;
    }
    const HandlerEntry& entry = handlers_[type_index];
    RKO_ASSERT_MSG(entry.registered, "message with no registered handler");
    switch (entry.handler_class) {
    case HandlerClass::kInline: {
        trace::Span span(engine_, id_, name);
        note_flow_end(*message, name);
        in_nb_handler_ = true;
        entry.fn(*this, std::move(message));
        in_nb_handler_ = false;
        return;
    }
    case HandlerClass::kLeaf:
        leaf_pool_.queue.push_back(std::move(message));
        leaf_pool_.idle.notify_one();
        return;
    case HandlerClass::kBlocking:
        blocking_pool_.queue.push_back(std::move(message));
        blocking_pool_.idle.notify_one();
        return;
    }
}

void Node::worker_body(sim::Actor& self, Pool& pool) {
    for (;;) {
        if (pool.queue.empty()) {
            if (stop_requested_) break;
            pool.idle.wait(engine_);
            continue;
        }
        MessagePtr message = std::move(pool.queue.front());
        pool.queue.pop_front();
        if (dead_) {
            ++dead_letters_;
            continue;
        }
        const HandlerEntry& entry =
            handlers_[static_cast<std::size_t>(message->hdr.type)];
        const char* name = msg_type_name(message->hdr.type);
        trace::Span span(engine_, id_, name);
        note_flow_end(*message, name);
        try {
            entry.fn(*this, std::move(message));
        } catch (const LocalNodeDead&) {
            // The node was killed while this handler awaited a reply; the
            // request it was serving dies with it.
            ++dead_letters_;
        }
        (void)self;
    }
}

std::uint64_t Node::total_dispatched() const {
    std::uint64_t total = 0;
    for (const auto count : dispatched_) total += count;
    return total;
}

void Node::doorbell() {
    if (dispatcher_idle_) dispatcher_->unpark(costs_.msg_doorbell);
}

MessagePtr rpc_retry(Node& node, KernelId dst,
                     const std::function<MessagePtr()>& make_request, int attempts,
                     Nanos backoff, RpcStatus* status) {
    RKO_ASSERT(attempts >= 1);
    RpcStatus last = RpcStatus::kOk;
    Nanos delay = backoff;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            node.engine().current().sleep_for(delay);
            delay *= 2;
        }
        MessagePtr reply = node.rpc(dst, make_request(), &last);
        if (reply != nullptr) {
            if (status != nullptr) *status = RpcStatus::kOk;
            return reply;
        }
    }
    RKO_ASSERT_MSG(status != nullptr,
                   "rpc_retry exhausted and the caller cannot handle it");
    *status = last;
    return nullptr;
}

} // namespace rko::msg
