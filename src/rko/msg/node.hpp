// Per-kernel messaging endpoint.
//
// Each kernel owns a Node: N-1 inbound channels, one dispatcher actor that
// demuxes arriving messages, a pool of kernel-worker actors for handlers
// that may block, and a pending-reply table implementing RPC.
//
// Handler discipline (enforced with assertions, see DESIGN.md §6):
//   - INLINE handlers run on the dispatcher. Pure local state updates: no
//     locks that can park, no awaits. (Replies are always completed inline.)
//   - LEAF handlers run on a dedicated leaf-worker pool. They may take
//     local kernel locks (whose holders never await — see the lock rule)
//     and reply(), but must never rpc().
//   - BLOCKING handlers run on the kworker pool and may rpc(), but only to
//     INLINE or LEAF handlers. Wait chains therefore have depth one, every
//     chain terminates in a handler that only waits on local locks whose
//     holders never await, and distributed deadlock is impossible by
//     construction.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rko/base/stats.hpp"
#include "rko/msg/channel.hpp"
#include "rko/msg/message.hpp"
#include "rko/sim/actor.hpp"
#include "rko/sim/sync.hpp"

namespace rko::msg {

/// Where a handler is allowed to run and what it may do; see the file
/// comment for the discipline each class implies.
enum class HandlerClass { kInline, kLeaf, kBlocking };

/// Outcome of an rpc/rpc_timed call. kPeerDead covers both "the destination
/// was already declared dead" (fails before the send) and "the destination
/// was declared dead while we waited" (fail_pending synthesized the wake).
enum class RpcStatus : std::uint8_t { kOk, kPeerDead, kTimeout };

const char* rpc_status_name(RpcStatus status);

/// Thrown out of rpc/rpc_scatter waits on a node that has itself been
/// killed (set_dead): the fiber unwinds instead of parking forever on
/// replies that will never be dispatched. Caught by the kworker loop and by
/// the api layer's guest-thread trampolines.
struct LocalNodeDead {};

class Node {
public:
    using Handler = std::function<void(Node&, MessagePtr)>;

    Node(sim::Engine& engine, const topo::CostModel& costs, KernelId id,
         int nworkers);
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;
    ~Node();

    KernelId id() const { return id_; }
    sim::Engine& engine() { return engine_; }
    const topo::CostModel& costs() const { return costs_; }

    /// Registers the handler for a message type. Must precede start().
    void register_handler(MsgType type, HandlerClass handler_class, Handler handler);

    /// Wires an inbound channel (called by Fabric) and returns the doorbell
    /// the channel should ring on delivery.
    void attach_inbound(Channel& channel);
    void attach_outbound(KernelId dst, Channel& channel);

    void start();

    /// Asks the dispatcher and workers to finish once drained; actors
    /// complete on a subsequent engine run.
    void request_stop();
    bool stopped() const;

    // --- Sending (valid from any actor except where noted) ---

    /// Fire-and-forget. Dropped (dead-letter counted) when this node is
    /// dead or the destination has been declared dead.
    void send(KernelId dst, MessagePtr message);

    /// Request/response; parks the caller until the reply arrives.
    /// Must not be called from a non-blocking handler or the dispatcher.
    /// With `status` null any failure is fatal (the pre-elastic contract:
    /// peers are immortal). With `status` set, a dead destination returns
    /// null with *status == kPeerDead instead of asserting — both when the
    /// peer was already dead at call time and when it is declared dead
    /// mid-wait (fail_pending). Throws LocalNodeDead if THIS node is dead.
    MessagePtr rpc(KernelId dst, MessagePtr request, RpcStatus* status = nullptr);

    /// Like rpc but gives up after `timeout` (virtual time): the pending
    /// ticket is withdrawn, the ticket is tombstoned so a late reply is
    /// silently dropped, and null is returned with *status == kTimeout.
    /// The wedge-proof variant the balancer uses to steal from peers that
    /// may die between the gossip row and the steal request.
    MessagePtr rpc_timed(KernelId dst, MessagePtr request, Nanos timeout,
                         RpcStatus* status = nullptr);

    /// Sends `response` as the reply to `request`.
    void reply(const Message& request, MessagePtr response);

    /// Sends `request` to every kernel in `dsts` and parks until all
    /// replies arrive; returns them in dst order. The request is copied per
    /// destination.
    std::vector<MessagePtr> rpc_all(const std::vector<KernelId>& dsts,
                                    const Message& request);

    /// Heterogeneous scatter-gather: posts every (dst, request) pair and
    /// parks ONCE until all replies arrive; returns them in post order.
    /// Unlike rpc_all the payloads differ per destination, and a
    /// destination may appear more than once (tickets, not kernel ids,
    /// correlate replies). The caller pays the posts' enqueue costs
    /// serially but waits out every round trip concurrently — the fan-out
    /// primitive the page-ownership protocol's parallel invalidation and
    /// ranged revokes are built on.
    struct ScatterItem {
        KernelId dst;
        MessagePtr request;
    };
    /// Posts to destinations already declared dead are not sent and their
    /// reply slots stay null; a destination dying mid-wait also nulls its
    /// slot (fail_pending). Callers that can race peer death must
    /// .filter/skip null entries; with no dead peers every entry is set.
    std::vector<MessagePtr> rpc_scatter(std::vector<ScatterItem> items);

    // --- Elastic membership hooks (rko/elastic) ---

    /// Marks `dead` unreachable: future rpc/send to it fail immediately and
    /// every in-flight rpc ticket destined for it is failed (kPeerDead) and
    /// its waiter unparked. Idempotent.
    void set_peer_dead(KernelId dead);
    bool peer_dead(KernelId peer) const { return dead_peers_.count(peer) != 0; }
    /// Fails every in-flight rpc ticket destined for `dead` without marking
    /// the peer (drain uses set_peer_dead; kill uses both).
    void fail_pending(KernelId dead);
    /// Clears the dead mark (hot re-join of a previously parted kernel).
    void set_peer_alive(KernelId peer) { dead_peers_.erase(peer); }

    /// Kills THIS node: every pending rpc fails (waiters throw
    /// LocalNodeDead on resume), outbound sends drop, and the dispatcher
    /// black-holes everything it dequeues from then on — inbound channels
    /// keep draining so peers' send costs stay paid and teardown is normal.
    void set_dead();
    bool dead() const { return dead_; }

    /// Messages dropped because this node or the destination was dead.
    std::uint64_t dead_letters() const { return dead_letters_; }
    /// Rpc tickets that failed (peer death or timeout) instead of replying.
    std::uint64_t rpc_failures() const { return rpc_failures_; }

    // --- Introspection ---
    std::uint64_t dispatched(MsgType type) const {
        return dispatched_[static_cast<std::size_t>(type)];
    }
    std::uint64_t total_dispatched() const;
    const base::Histogram& delivery_latency() const { return delivery_latency_; }
    // Scatter-gather accounting (rpc_all and rpc_scatter; msg.scatter.* in
    // Machine::collect_metrics): batches posted, total requests in them,
    // the fan-out distribution, and the overlapped wait per batch — what a
    // serial per-destination loop would have multiplied by the fan-out.
    std::uint64_t scatter_batches() const { return scatter_batches_; }
    std::uint64_t scatter_posts() const { return scatter_posts_; }
    const base::Histogram& scatter_fanout() const { return scatter_fanout_; }
    const base::Histogram& scatter_wait() const { return scatter_wait_; }
    bool in_nonblocking_handler() const { return in_nb_handler_; }
    /// RPCs awaiting a reply (must be 0 at quiesce).
    std::size_t pending_replies() const { return pending_.size(); }

    /// Rung by inbound channels when a message lands; wakes an idle
    /// dispatcher after the modeled IPI latency.
    void doorbell();

private:
    struct PendingReply {
        sim::Actor* waiter = nullptr;
        MessagePtr reply;
        int outstanding = 1; ///< for rpc_all fan-in
        std::vector<MessagePtr>* sink = nullptr;
        std::size_t sink_index = 0;
        RpcStatus status = RpcStatus::kOk; ///< sticky: any failed ticket
    };

    struct Pool {
        std::vector<std::unique_ptr<sim::Actor>> workers;
        std::deque<MessagePtr> queue;
        sim::WaitList idle;
    };

    void dispatcher_body(sim::Actor& self);
    void worker_body(sim::Actor& self, Pool& pool);
    MessagePtr scan_inbound();
    Nanos earliest_pending() const;
    void route(MessagePtr message);
    void complete_reply(MessagePtr message);
    /// Fails one pending ticket with `status`: reply stays null, the slot's
    /// status is marked, and the waiter is unparked once fan-in drains.
    void fail_ticket(std::uint64_t ticket, RpcStatus status);
    /// Post-park failure handling shared by rpc/rpc_timed.
    MessagePtr finish_rpc(PendingReply& slot, RpcStatus* status);
    /// Lands the flow arrow carried by `message` on this kernel's track.
    void note_flow_end(const Message& message, const char* name);
    bool is_leaf_worker(const sim::Actor* actor) const;
    void spawn_workers(Pool& pool, int count, const char* tag);

    sim::Engine& engine_;
    const topo::CostModel& costs_;
    KernelId id_;
    bool stop_requested_ = false;

    struct HandlerEntry {
        Handler fn;
        HandlerClass handler_class = HandlerClass::kInline;
        bool registered = false;
    };
    std::array<HandlerEntry, kNumMsgTypes> handlers_{};

    std::vector<Channel*> inbound_;
    std::unordered_map<KernelId, Channel*> outbound_;
    std::size_t scan_cursor_ = 0;

    std::unique_ptr<sim::Actor> dispatcher_;
    bool dispatcher_idle_ = false;
    Pool blocking_pool_;
    Pool leaf_pool_;
    bool in_nb_handler_ = false;

    std::uint64_t next_ticket_ = 1;
    std::unordered_map<std::uint64_t, PendingReply*> pending_;
    std::unordered_map<std::uint64_t, std::size_t> ticket_index_; // rpc_all fan-in order
    std::unordered_map<std::uint64_t, KernelId> ticket_dst_;      // for fail_pending
    std::unordered_set<std::uint64_t> cancelled_; // timed-out tickets: drop late replies
    std::unordered_set<KernelId> dead_peers_;
    bool dead_ = false;
    std::uint64_t dead_letters_ = 0;
    std::uint64_t rpc_failures_ = 0;

    std::array<std::uint64_t, kNumMsgTypes> dispatched_{};
    base::Histogram delivery_latency_;
    std::uint64_t scatter_batches_ = 0;
    std::uint64_t scatter_posts_ = 0;
    base::Histogram scatter_fanout_;
    base::Histogram scatter_wait_;
};

/// Bounded retry with exponential backoff in virtual time. Calls
/// `make_request()` to build a fresh message per attempt (messages are
/// consumed by rpc), sleeping `backoff`, 2*backoff, 4*backoff, ... between
/// attempts. Returns the first successful reply, or null with *status
/// holding the last failure after `attempts` tries. Runs on the calling
/// actor; the same call-site restrictions as Node::rpc apply.
MessagePtr rpc_retry(Node& node, KernelId dst,
                     const std::function<MessagePtr()>& make_request, int attempts,
                     Nanos backoff, RpcStatus* status = nullptr);

} // namespace rko::msg
