// Inter-kernel message format.
//
// Mirrors Popcorn's messaging layer: fixed-size slots big enough to carry
// one 4 KiB page plus a protocol header, a compact type id demuxed by the
// receiving kernel's dispatcher, and a ticket correlating replies with
// outstanding requests. Payloads are trivially-copyable PODs only.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "rko/base/assert.hpp"
#include "rko/base/units.hpp"
#include "rko/topo/topology.hpp"

namespace rko::msg {

using topo::KernelId;

enum class MsgType : std::uint16_t {
    kPing = 0,          ///< liveness / latency probe (nb)
    kShutdown,          ///< stop the dispatcher (nb)
    // Thread groups & migration (core/)
    kRemoteClone,       ///< create a thread of a distributed group here (blk)
    kMigrate,           ///< import a migrating thread context (blk)
    kMigrateBack,       ///< re-activate the shadow task at origin (blk)
    kTaskExit,          ///< distributed-group member exited (nb)
    kGroupUpdate,       ///< membership/location change -> origin (nb)
    kGroupExit,         ///< whole-group teardown broadcast (nb)
    // Address space: VMA layer (core/vma_server)
    kVmaOp,             ///< execute mmap/munmap/mprotect at origin (blk)
    kVmaFetch,          ///< fetch the VMA covering an address (nb)
    kVmaUpdate,         ///< apply a VMA change to a replica (nb)
    // Address space: page-ownership layer (core/page_owner)
    kPageFault,         ///< remote fault: request access from directory (blk)
    kPageFetch,         ///< directory -> owner: send current bytes (nb)
    kPageInvalidate,    ///< directory -> holder: drop your copy (nb)
    kPageInstalled,     ///< requester -> directory: install done, commit (nb)
    // Distributed futex (core/dfutex)
    kFutexWait,         ///< queue a waiter at the origin futex table (blk)
    kFutexWake,         ///< wake up to n waiters at origin (blk)
    kFutexGrant,        ///< origin -> waiter kernel: wake this task (nb)
    kFutexCancel,       ///< waiter timed out: remove it from the queue (nb)
    kFutexGrantBatch,   ///< origin -> kernel: wake n from your local convoy (leaf)
    kFutexDeregister,   ///< kernel -> origin: local convoy drained (oneway, leaf)
    // Single-system image (core/ssi)
    kTaskCensus,        ///< enumerate tasks on this kernel (nb)
    kLoadReport,        ///< periodic load exchange for migration policy (nb)
    // Load balancing (balance/)
    kLoadGossip,        ///< one-way balancer load broadcast (nb)
    kSteal,             ///< thief asks victim to surrender a queued thread (leaf)
    // Coherence batching & fault-around prefetch (core/page_owner, §10)
    kPageInvalidateRange, ///< directory -> holder: drop/downgrade a VPN batch (leaf)
    kPageFaultBatch,    ///< remote fault upgraded to a multi-page window (blk)
    kPagePush,          ///< origin -> requester: one prefetched page (leaf)
    // Elastic membership (elastic/)
    kMembershipUpdate,  ///< membership event broadcast: dead/parted/join (nb)
    kElasticEvict,      ///< drain: evict a parting holder's page copies (blk)
    // Sharded directory homes (rko/home)
    kHomeRangeOp,       ///< origin -> home: ranged directory sweep (blk)
    kHomeRebuild,       ///< new shard owner -> survivor: PTE census chunk (leaf)
    // Working-set migration (core/migration + core/page_owner, §15)
    kWorksetPull,       ///< migrated thread -> home: push my shipped hot pages (blk)
    kWorksetPush,       ///< home -> destination: one pre-copied page (leaf)
    kCount
};

constexpr std::size_t kNumMsgTypes = static_cast<std::size_t>(MsgType::kCount);

const char* msg_type_name(MsgType type);

enum class MsgKind : std::uint16_t { kOneway = 0, kRequest, kReply };

/// Fits one page of data plus protocol fields.
constexpr std::size_t kMaxPayload = 4096 + 256;

struct MessageHeader {
    MsgType type = MsgType::kPing;
    MsgKind kind = MsgKind::kOneway;
    std::uint32_t payload_size = 0;
    KernelId src = -1;
    KernelId dst = -1;
    std::uint64_t ticket = 0; ///< request/reply correlation
};

struct Message {
    MessageHeader hdr;
    /// Virtual time at which the receiver may observe the message
    /// (enqueue completion + wire latency). Simulation metadata, not state
    /// the guest protocol may read.
    Nanos ready_at = 0;
    /// Tracing flow id correlating this send with its remote dispatch;
    /// 0 = untraced. Simulation metadata like ready_at.
    std::uint64_t trace_flow = 0;
    std::array<std::byte, kMaxPayload> payload;

    template <typename T>
    void set_payload(const T& value) {
        static_assert(std::is_trivially_copyable_v<T>, "payloads must be PODs");
        static_assert(sizeof(T) <= kMaxPayload, "payload too large for a slot");
        hdr.payload_size = static_cast<std::uint32_t>(sizeof(T));
        std::memcpy(payload.data(), &value, sizeof(T));
    }

    /// Truncated-payload variant for messages whose trailing page-data
    /// array travels only when flags say so: charges `bytes` on the wire
    /// instead of sizeof(T), so msg.bytes and modeled copy costs reflect
    /// what actually crosses the fabric. `bytes` must cover every field the
    /// receiver reads unconditionally (everything before the data array) —
    /// pair with payload_prefix_as on the receiving side.
    template <typename T>
    void set_payload_prefix(const T& value, std::size_t bytes) {
        static_assert(std::is_trivially_copyable_v<T>, "payloads must be PODs");
        static_assert(sizeof(T) <= kMaxPayload, "payload too large for a slot");
        RKO_ASSERT_MSG(bytes > 0 && bytes <= sizeof(T),
                       "payload prefix must be within the payload type");
        hdr.payload_size = static_cast<std::uint32_t>(bytes);
        std::memcpy(payload.data(), &value, bytes);
    }

    template <typename T>
    const T& payload_as() const {
        static_assert(std::is_trivially_copyable_v<T>, "payloads must be PODs");
        RKO_ASSERT_MSG(hdr.payload_size == sizeof(T), "payload size mismatch");
        return *reinterpret_cast<const T*>(payload.data());
    }

    /// Reads a possibly-truncated T (see set_payload_prefix). The slot is
    /// kMaxPayload wide, so the reference is always in bounds; bytes past
    /// hdr.payload_size are unspecified and the caller must gate on the
    /// flags the prefix carries (data_included and friends).
    template <typename T>
    const T& payload_prefix_as() const {
        static_assert(std::is_trivially_copyable_v<T>, "payloads must be PODs");
        static_assert(sizeof(T) <= kMaxPayload, "payload too large for a slot");
        RKO_ASSERT_MSG(hdr.payload_size > 0 && hdr.payload_size <= sizeof(T),
                       "payload prefix size out of range");
        return *reinterpret_cast<const T*>(payload.data());
    }

    template <typename T>
    T& payload_as() {
        static_assert(std::is_trivially_copyable_v<T>, "payloads must be PODs");
        RKO_ASSERT_MSG(hdr.payload_size == sizeof(T), "payload size mismatch");
        return *reinterpret_cast<T*>(payload.data());
    }

    /// Bytes that travel on the wire (header + payload).
    std::size_t wire_size() const { return sizeof(MessageHeader) + hdr.payload_size; }
};

using MessagePtr = std::unique_ptr<Message>;

template <typename T>
MessagePtr make_message(MsgType type, MsgKind kind, const T& payload) {
    auto m = std::make_unique<Message>();
    m->hdr.type = type;
    m->hdr.kind = kind;
    m->set_payload(payload);
    return m;
}

inline MessagePtr make_message(MsgType type, MsgKind kind) {
    auto m = std::make_unique<Message>();
    m->hdr.type = type;
    m->hdr.kind = kind;
    return m;
}

/// make_message with a truncated payload (see Message::set_payload_prefix).
template <typename T>
MessagePtr make_message_prefix(MsgType type, MsgKind kind, const T& payload,
                               std::size_t bytes) {
    auto m = std::make_unique<Message>();
    m->hdr.type = type;
    m->hdr.kind = kind;
    m->set_payload_prefix(payload, bytes);
    return m;
}

} // namespace rko::msg
