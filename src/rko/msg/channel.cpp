#include "rko/msg/channel.hpp"

#include <utility>

#include "rko/trace/trace.hpp"

namespace rko::msg {

Channel::Channel(sim::Engine& engine, const topo::CostModel& costs, KernelId src,
                 KernelId dst, std::size_t capacity, std::function<void()> on_delivery)
    : engine_(engine),
      costs_(costs),
      src_(src),
      dst_(dst),
      capacity_(capacity),
      on_delivery_(std::move(on_delivery)) {
    RKO_ASSERT(capacity_ > 0);
}

void Channel::send(MessagePtr message) {
    sim::Actor& self = engine_.current();
    RKO_ASSERT(message != nullptr);
    message->hdr.src = src_;
    message->hdr.dst = dst_;

    // Backpressure: a full ring stalls the sender until the receiver drains
    // a slot, exactly like spinning on a full shared-memory ring.
    while (ring_.size() >= capacity_) {
        const Nanos stalled_at = self.now();
        senders_.wait(engine_);
        backpressure_time_ += self.now() - stalled_at;
    }

    // Slot publish + payload copy happen on the sender's core.
    const std::size_t bytes = message->wire_size();
    const Nanos publish_start = self.now();
    trace::Tracer* tr = trace::active(engine_);
    if (tr != nullptr) {
        // The flow arrow starts at the publish slice and lands where the
        // receiver's dispatcher (or worker) handles the message.
        message->trace_flow = tr->next_flow_id();
        tr->flow_begin(engine_, src_, msg_type_name(message->hdr.type),
                       message->trace_flow);
    }
    self.sleep_for(costs_.msg_enqueue + costs_.copy_cost(bytes));
    if (tr != nullptr) tr->span(engine_, src_, "msg.send", publish_start, bytes);

    Nanos ready = self.now() + costs_.msg_wire_latency;
    if (jitter_ > 0) {
        ready += static_cast<Nanos>(
            jitter_rng_.below(static_cast<std::uint64_t>(jitter_) + 1));
        if (ready < last_ready_) ready = last_ready_;
        last_ready_ = ready;
    }
    message->ready_at = ready;
    ++sent_;
    bytes_ += bytes;
    ring_.push_back(std::move(message));
    if (on_delivery_) on_delivery_();
}

MessagePtr Channel::try_pop() {
    if (ring_.empty()) return nullptr;
    if (ring_.front()->ready_at > engine_.now()) return nullptr;
    MessagePtr message = std::move(ring_.front());
    ring_.pop_front();
    senders_.notify_one();
    return message;
}

Nanos Channel::head_ready_at() const {
    return ring_.empty() ? -1 : ring_.front()->ready_at;
}

} // namespace rko::msg
