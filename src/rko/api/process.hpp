// Process, Thread, and Guest: the task-based, Linux-like programming model
// the replicated-kernel OS presents (paper §III: applications are unaware
// the OS underneath is distributed).
//
// Guest code is an ordinary C++ callable taking a Guest&. It addresses
// memory through guest virtual addresses (mmap/read/write), synchronizes
// with futexes (plus mutex/barrier conveniences built on them, as glibc
// does), spawns threads on any kernel, and may migrate itself between
// kernels. Thread joins use CLEARTID-style ctid words + futex wake, like
// glibc's pthread_join.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rko/core/migration.hpp"
#include "rko/mem/mmu.hpp"
#include "rko/mem/types.hpp"
#include "rko/sim/actor.hpp"
#include "rko/task/task.hpp"
#include "rko/topo/topology.hpp"

namespace rko::kernel {
class Kernel;
}

namespace rko::api {

class Machine;
class Process;
class Thread;
class Guest;

using GuestFn = std::function<void(Guest&)>;

/// Thrown inside guest code when this thread's kernel was fail-stopped
/// (rko/elastic): unwinds the fiber back to Thread::body, which exits the
/// task locally with status 137 (128 + SIGKILL).
struct ThreadKilled {};

/// Handle to one guest thread (the continuously-executing entity; the
/// per-kernel task records come and go as it migrates).
class Thread {
public:
    Thread(Machine& machine, Process& process, Tid tid, topo::KernelId start_kernel,
           GuestFn fn, mem::Vaddr ctid);
    Thread(const Thread&) = delete;
    Thread& operator=(const Thread&) = delete;
    ~Thread();

    Tid tid() const { return tid_; }
    bool finished() const;
    int exit_status() const { return exit_status_; }
    bool segfaulted() const { return segfaulted_; }
    mem::Vaddr ctid() const { return ctid_; }
    sim::Actor* actor() { return actor_.get(); }
    topo::KernelId current_kernel() const { return kernel_id_; }

    /// Elastic kill: the next guest operation throws ThreadKilled. Called
    /// by the kernel's reaper via the Machine's thread_killer hook.
    void request_kill() { kill_requested_ = true; }
    bool kill_requested() const { return kill_requested_; }

private:
    friend class Guest;
    friend class Process;

    void body();

    Machine& machine_;
    Process& process_;
    Tid tid_;
    topo::KernelId kernel_id_;
    GuestFn fn_;
    mem::Vaddr ctid_;
    std::unique_ptr<mem::Mmu> mmu_;
    std::unique_ptr<sim::Actor> actor_;
    task::Task* task_ = nullptr;
    int exit_status_ = 0;
    bool segfaulted_ = false;
    bool kill_requested_ = false;
};

class Process {
public:
    Process(Machine& machine, Pid pid, topo::KernelId origin);
    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;
    ~Process();

    Pid pid() const { return pid_; }
    topo::KernelId origin() const { return origin_; }
    Machine& machine() { return machine_; }

    /// Spawns a guest thread on `where`. From host context this is the
    /// boot path (direct instantiation); from guest context it runs the
    /// distributed spawn protocol on the caller's actor.
    Thread& spawn(GuestFn fn, topo::KernelId where);

    /// Asserts every spawned thread has finished; call after Machine::run().
    void check_all_joined() const;

    /// Reclaims the dead process's machine-wide resources (all page frames
    /// at every kernel, replica sites). Host-side; every thread must have
    /// finished. The origin keeps the master record for post-mortem
    /// inspection. Idempotent.
    void destroy();
    bool destroyed() const { return destroyed_; }

    const std::vector<std::unique_ptr<Thread>>& threads() const { return threads_; }

private:
    friend class Guest;
    friend class Thread;

    Thread& spawn_common(GuestFn fn, topo::KernelId where, Guest* parent);
    mem::Vaddr alloc_ctid();

    Machine& machine_;
    Pid pid_;
    topo::KernelId origin_;
    std::vector<std::unique_ptr<Thread>> threads_;
    mem::Vaddr ctid_base_;
    std::uint64_t ctid_next_ = 0;
    bool destroyed_ = false;
};

/// The thread-self interface guest code programs against. Every method
/// runs on the calling thread's actor and charges honest virtual time.
class Guest {
public:
    Guest(Machine& machine, Thread& thread);

    // --- Identity ---
    Tid tid() const { return thread_.tid_; }
    Pid pid() const;
    topo::KernelId kernel() const { return thread_.kernel_id_; }
    Nanos now() const;
    Machine& machine() { return machine_; }

    // --- Memory ---
    /// Anonymous shared-within-process mapping; 0 on failure.
    mem::Vaddr mmap(std::uint64_t length,
                    std::uint32_t prot = mem::kProtRead | mem::kProtWrite);
    int munmap(mem::Vaddr addr, std::uint64_t length);
    int mprotect(mem::Vaddr addr, std::uint64_t length, std::uint32_t prot);
    /// Sets (new_brk != 0) or queries (new_brk == 0) the program break.
    mem::Vaddr brk(mem::Vaddr new_brk = 0);
    /// Grows the heap by `delta` bytes; returns the old break, or 0 on
    /// failure (like sbrk returning -1).
    mem::Vaddr sbrk(std::int64_t delta);

    template <typename T>
    T read(mem::Vaddr addr) {
        return thread_.mmu_->read<T>(addr);
    }
    template <typename T>
    void write(mem::Vaddr addr, const T& value) {
        thread_.mmu_->write<T>(addr, value);
    }
    void read_bytes(mem::Vaddr addr, std::byte* out, std::size_t n) {
        thread_.mmu_->read_bytes(addr, out, n);
    }
    void write_bytes(mem::Vaddr addr, const std::byte* src, std::size_t n) {
        thread_.mmu_->write_bytes(addr, src, n);
    }
    /// Atomic guest RMW (see Mmu::rmw_u32); returns the old value.
    std::uint32_t rmw_u32(mem::Vaddr addr,
                          const std::function<std::uint32_t(std::uint32_t)>& fn) {
        return thread_.mmu_->rmw_u32(addr, fn);
    }
    /// Compare-and-swap; returns the old value (success iff old == expect).
    std::uint32_t cas_u32(mem::Vaddr addr, std::uint32_t expect, std::uint32_t desired);

    // --- Synchronization ---
    int futex_wait(mem::Vaddr uaddr, std::uint32_t val);
    /// Timed wait: returns 0 on wake, EAGAIN on value mismatch, ETIMEDOUT
    /// if `timeout` elapses (spurious wakeups possible, as with futexes).
    int futex_wait_for(mem::Vaddr uaddr, std::uint32_t val, Nanos timeout);
    int futex_wake(mem::Vaddr uaddr, std::uint32_t max_wake);
    /// Drepper-style futex mutex over one u32 (0 free / 1 locked / 2 contended).
    void mutex_lock(mem::Vaddr addr);
    void mutex_unlock(mem::Vaddr addr);
    /// Sense-reversing futex barrier over two u32 words at addr (count, gen).
    void barrier_wait(mem::Vaddr addr, std::uint32_t nthreads);

    // --- Threads & placement ---
    Thread& spawn(GuestFn fn, topo::KernelId where);
    /// Blocks until `thread` exits (ctid futex protocol, like pthread_join).
    void join(Thread& thread);
    /// Migrates this thread to `dest`; returns the phase breakdown.
    core::MigrationBreakdown migrate(topo::KernelId dest);
    void yield();
    /// Models `ns` of pure user-mode computation (preemptible per quantum).
    void compute(Nanos ns);

    // --- Introspection (SSI) ---
    std::uint32_t global_task_count();
    /// Machine-wide task listing for this process ("ps").
    std::vector<core::TaskInfo> ps();
    topo::KernelId least_loaded_kernel();

    /// Settles the MMU's batched per-access charges so now() deltas around
    /// the next operation are exact (benchmarking helper).
    void flush_timing();

private:
    friend class Thread;
    friend class Process;

    kernel::Kernel& k();
    task::Task& t();
    void bind(topo::KernelId kernel_id);
    /// bind + scheduler acquire, following balancer steals: when acquire
    /// returns core-less (the queued task was claimed by a balancer), the
    /// thread ships itself to Task::balance_target and tries again there.
    void place(topo::KernelId kernel_id);
    /// Preemption-checkpoint hook: consumes a pending balancer hint
    /// (Task::balance_target) by self-migrating. No-op when none is set.
    void rebalance_checkpoint();
    /// Elastic kill checkpoint: throws ThreadKilled when this thread's
    /// kernel was fail-stopped. Checked at syscall entries and compute
    /// quanta — the same user-space boundaries migration uses.
    void check_killed();

    Machine& machine_;
    Thread& thread_;
};

} // namespace rko::api
