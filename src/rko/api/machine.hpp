// Public facade: a simulated multicore machine running the replicated-
// kernel OS (or its SMP / multikernel configurations).
//
//   rko::api::MachineConfig cfg{.ncores = 16, .nkernels = 4};
//   rko::api::Machine machine(cfg);
//   auto& process = machine.create_process(0);
//   process.spawn([](rko::api::Guest& g) { ... }, /*kernel=*/2);
//   machine.run();
//
// nkernels == 1 is the SMP baseline: same code, but every core shares one
// kernel's structures. See rko/mk for the Barrelfish-style shared-nothing
// baseline built on top of this facade.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "rko/api/process.hpp"
#include "rko/balance/balance.hpp"
#include "rko/check/gate.hpp"
#include "rko/core/workset.hpp"
#include "rko/elastic/elastic.hpp"
#include "rko/home/home.hpp"
#include "rko/kernel/kernel.hpp"
#include "rko/mem/phys.hpp"
#include "rko/msg/fabric.hpp"
#include "rko/sim/engine.hpp"
#include "rko/topo/topology.hpp"
#include "rko/trace/trace.hpp"

namespace rko::api {

struct MachineConfig {
    int ncores = 8;
    int nkernels = 2;                      ///< 1 = SMP baseline
    std::size_t frames_per_kernel = 16384; ///< 64 MiB of guest RAM per kernel
    topo::CostModel costs;
    msg::FabricConfig fabric;
    std::uint64_t seed = 1;
    /// Page-consistency ablation: true = MSI with reader replication
    /// (the paper's protocol), false = migrate-on-any-fault (no Shared
    /// state; see DESIGN.md §5).
    bool read_replication = true;
    /// Fault-around prefetch window in pages (DESIGN.md §10). A remote read
    /// fault from a thread with a detected sequential stride is upgraded to
    /// a batched transaction covering up to this many pages. <= 1 disables
    /// the detector entirely: runs are bit-identical to the pre-prefetch
    /// protocol (no kPageFaultBatch messages exist on the wire).
    int prefetch_window = 1;
    /// Hierarchical futex (DESIGN.md §13): remote waiters on the same
    /// (pid, uaddr) aggregate into a per-kernel convoy, the origin fans
    /// wakes out as batched kFutexGrantBatch RPCs, and granted kernels
    /// hand the lock around locally. false restores the flat per-waiter
    /// protocol exactly (no kFutexGrantBatch/kFutexDeregister on the wire).
    bool futex_hierarchy = true;
    /// Consecutive wake(1)s a granted kernel may serve from its own convoy
    /// before the next wake returns to the origin (fairness budget for the
    /// local-handoff fast path). 64 follows the lock-cohorting literature:
    /// wide enough that a kernel's whole runnable cohort cycles through the
    /// lock between cross-kernel rotations, small enough that remote
    /// convoys are served on a bounded cadence.
    std::uint32_t futex_handoff_cap = 64;
    /// Sharded directory homes (rko/home, DESIGN.md §14): page-ownership
    /// directory entries spread over this many shards, rendezvous-hashed
    /// across the live kernels, with the VMA tree replicated (epoch-
    /// invalidated) so non-origin homes can validate faults locally. The
    /// default 1 keeps every entry at the origin — wire protocol and
    /// timings bit-identical to the pre-home system. Defaults to the
    /// RKO_HOME_SHARDS environment variable when set.
    int home_shards = home::shards_from_env();
    /// Working-set migration (DESIGN.md §15): a migrating thread's
    /// checkpoint piggybacks up to this many of its hottest page numbers;
    /// the destination pulls them from their homes in one scatter round
    /// before resuming, and a short post-copy boost widens fault-around
    /// for the tail. 0 disables: the tracker never ships, no
    /// kWorksetPull/kWorksetPush messages exist on the wire, and runs are
    /// bit-identical to the pre-workset protocol. Defaults to the
    /// RKO_WORKSET_PUSH environment variable when set.
    int workset_push = core::workset_push_from_env();
    /// Tracing & metrics; defaults follow the RKO_TRACE environment
    /// variable (see trace::TraceConfig::from_env). Metrics are collected
    /// regardless; `trace.enabled` only gates event recording.
    trace::TraceConfig trace = trace::TraceConfig::from_env();
    /// Cross-kernel invariant audits (rko/check) at quiesce points: after
    /// every drained run() and at teardown. Defaults to the RKO_CHECK
    /// environment variable; audits are host-side and never touch virtual
    /// time, so enabling them cannot change simulated results.
    bool check = check::enabled();
    /// Schedule exploration: dispatch same-timestamp events in a seeded
    /// random order instead of insertion order (see Engine). The run stays
    /// deterministic for a given `seed`; rko_explore sweeps many.
    bool shuffle_ties = false;
    /// Autonomous load balancing (rko/balance). With the default policy
    /// kNone no balancer actors or handlers exist and runs are
    /// bit-identical to the pre-balancer machine.
    balance::BalanceConfig balance;
    /// Kernel elasticity (rko/elastic): lease-based failure detection,
    /// drain, and hot add/remove. Disabled by default — no elastic actors
    /// or handlers exist and runs are bit-identical to the static machine.
    elastic::ElasticConfig elastic;
};

class Machine {
public:
    explicit Machine(MachineConfig config);
    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;
    ~Machine();

    const MachineConfig& config() const { return config_; }
    sim::Engine& engine() { return engine_; }
    const topo::Topology& topology() const { return topo_; }
    const topo::CostModel& costs() const { return config_.costs; }
    mem::PhysMem& phys() { return phys_; }
    msg::Fabric& fabric() { return *fabric_; }
    kernel::Kernel& kernel(topo::KernelId id);
    int nkernels() const { return config_.nkernels; }
    int ncores() const { return config_.ncores; }

    /// Creates a process homed on `origin`. Host-side (boot) operation.
    Process& create_process(topo::KernelId origin);

    /// Every process created on this machine (invariant checkers, tests).
    const std::vector<std::unique_ptr<Process>>& processes() const {
        return processes_;
    }

    /// Runs the simulation until the event queue drains (all guest threads
    /// finished and every service idle). Returns final virtual time.
    Nanos run();
    Nanos run_until(Nanos deadline);

    // --- Elasticity (requires config().elastic.enabled) ---
    /// Fail-stops `id` at the current virtual time: its node goes dead, its
    /// guest threads are unwound with status 137, and peers detect the
    /// silence via expired leases. The kernel must not home any process.
    void kill_kernel(topo::KernelId id);
    /// Gracefully evacuates `id`: threads re-place onto peers, owned page
    /// copies are handed back to their origins, then the kernel parts.
    void drain_kernel(topo::KernelId id);
    /// Hot add: a parted (or deferred-boot) kernel rejoins and its balancer
    /// starts, so idle-steal pulls work within one balance period.
    void join_kernel(topo::KernelId id);
    /// True when `id` is out of the membership (killed, drained, or booted
    /// deferred and not yet joined). Invariant checkers exempt such kernels.
    bool is_killed(topo::KernelId id);

    /// Virtual time now.
    Nanos now() const { return engine_.now(); }

    // --- Aggregates for benches ---
    std::uint64_t total_messages() const { return fabric_->total_messages(); }
    std::uint64_t total_message_bytes() const { return fabric_->total_bytes(); }

    // --- Observability ---
    /// The machine's tracer (always present; recording obeys config().trace).
    trace::Tracer& tracer() { return *tracer_; }
    /// Machine-wide metrics: every kernel's registry merged, plus messaging
    /// (per-channel and aggregate) and lock-wait statistics snapshotted at
    /// call time. Call after run() for a consistent end-of-run view.
    trace::MetricsRegistry collect_metrics();

    // --- Internal (used by Process/Thread) ---
    void register_thread(Tid tid, Thread* thread);
    void unregister_thread(Tid tid);
    Thread* thread_of(Tid tid);

private:
    /// Installs the kill/reap callbacks the elastic subsystem needs from
    /// the layer that owns the Thread objects.
    void install_elastic_hooks(kernel::Kernel& k);

    MachineConfig config_;
    sim::Engine engine_;
    topo::Topology topo_;
    mem::PhysMem phys_;
    std::unique_ptr<trace::Tracer> tracer_; ///< attached to engine_ at boot
    std::unique_ptr<msg::Fabric> fabric_;
    std::vector<std::unique_ptr<kernel::Kernel>> kernels_;
    // threads_ is declared before processes_ deliberately: ~Thread (owned
    // by a Process) unregisters itself here, so the registry must outlive
    // the processes.
    std::map<Tid, Thread*> threads_;
    std::vector<std::unique_ptr<Process>> processes_;
    bool stopped_ = false;
};

} // namespace rko::api
