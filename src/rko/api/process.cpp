#include "rko/api/process.hpp"

#include <limits>

#include "rko/api/machine.hpp"
#include "rko/base/log.hpp"
#include "rko/core/dfutex.hpp"
#include "rko/core/page_owner.hpp"
#include "rko/core/ssi.hpp"
#include "rko/core/thread_group.hpp"
#include "rko/core/migration.hpp"
#include "rko/core/vma_server.hpp"
#include "rko/kernel/kernel.hpp"
#include "rko/msg/node.hpp"
#include "rko/trace/trace.hpp"

namespace rko::api {

namespace {
/// Guest region holding the per-thread ctid words (clear-tid protocol).
/// One page per thread: glibc keeps ctid on the (private) thread stack, so
/// exit-time writes must not false-share a page between threads on
/// different kernels.
constexpr mem::Vaddr kCtidBase = 0x0000'6000'0000'0000ULL;
constexpr std::uint64_t kCtidPages = 2048; ///< max threads per process
constexpr std::uint64_t kCtidStride = mem::kPageSize;
} // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Machine& machine, Pid pid, topo::KernelId origin)
    : machine_(machine), pid_(pid), origin_(origin), ctid_base_(kCtidBase) {
    // Boot-time mapping for the thread control words (glibc would place
    // these in TLS; we give them a fixed shared region).
    auto& site = machine_.kernel(origin_).site(pid_);
    RKO_ASSERT(site.space().vmas().insert(
        {ctid_base_, ctid_base_ + kCtidPages * mem::kPageSize,
         mem::kProtRead | mem::kProtWrite}));
}

Process::~Process() = default;

mem::Vaddr Process::alloc_ctid() {
    RKO_ASSERT_MSG(ctid_next_ < kCtidPages * (mem::kPageSize / kCtidStride),
                   "thread limit reached");
    return ctid_base_ + (ctid_next_++) * kCtidStride;
}

Thread& Process::spawn(GuestFn fn, topo::KernelId where) {
    return spawn_common(std::move(fn), where, nullptr);
}

Thread& Process::spawn_common(GuestFn fn, topo::KernelId where, Guest* parent) {
    kernel::Kernel& origin_kernel = machine_.kernel(origin_);
    const Tid tid = origin_kernel.alloc_pid();
    auto thread = std::make_unique<Thread>(machine_, *this, tid, where, std::move(fn),
                                           alloc_ctid());
    Thread& ref = *thread;
    threads_.push_back(std::move(thread));
    machine_.register_thread(tid, &ref);

    if (parent == nullptr) {
        // Boot path: the host instantiates directly (no protocol cost), the
        // way init's first threads appear at kernel boot.
        RKO_ASSERT_MSG(sim::current_engine() == nullptr,
                       "in-simulation spawns must go through Guest::spawn");
        origin_kernel.groups().origin_join(pid_, tid, where);
        task::Task& t = machine_.kernel(where).groups().instantiate_local(
            pid_, tid, origin_, "thread");
        RKO_ASSERT(t.actor != nullptr);
        t.actor->start();
        return ref;
    }

    // Guest path: distributed thread-group spawn on the parent's actor.
    kernel::Kernel& pk = parent->k();
    RKO_ASSERT(pk.groups().spawn(parent->t(), pk.site(pid_), tid, where));
    return ref;
}

void Process::destroy() {
    if (destroyed_) return;
    RKO_ASSERT_MSG(sim::current_engine() == nullptr, "destroy() is host-side");
    check_all_joined();
    kernel::Kernel& origin_kernel = machine_.kernel(origin_);
    // The teardown protocol awaits replies, so run it on a helper actor.
    sim::Actor reaper(machine_.engine(), "reaper",
                      [&](sim::Actor&) {
                          origin_kernel.groups().teardown(origin_kernel.site(pid_));
                      });
    reaper.start();
    machine_.engine().run();
    RKO_ASSERT(reaper.finished());
    destroyed_ = true;
}

void Process::check_all_joined() const {
    for (const auto& thread : threads_) {
        RKO_ASSERT_MSG(thread->finished(), "a guest thread never finished");
    }
}

// ---------------------------------------------------------------------------
// Thread
// ---------------------------------------------------------------------------

Thread::Thread(Machine& machine, Process& process, Tid tid,
               topo::KernelId start_kernel, GuestFn fn, mem::Vaddr ctid)
    : machine_(machine),
      process_(process),
      tid_(tid),
      kernel_id_(start_kernel),
      fn_(std::move(fn)),
      ctid_(ctid) {
    mmu_ = std::make_unique<mem::Mmu>(machine.phys(), machine.costs());
    actor_ = std::make_unique<sim::Actor>(machine.engine(),
                                          "tid" + std::to_string(tid),
                                          [this](sim::Actor&) { body(); });
}

Thread::~Thread() {
    machine_.unregister_thread(tid_);
}

bool Thread::finished() const {
    return actor_ != nullptr && actor_->finished();
}

void Thread::body() {
    Guest guest(machine_, *this);

    int status = 0;
    try {
        guest.place(kernel_id_);
        fn_(guest);
    } catch (const mem::GuestFault& fault) {
        segfaulted_ = true;
        status = 139; // 128 + SIGSEGV, as a shell would report
        RKO_WARN("tid %lld SIGSEGV at guest address 0x%llx",
                 static_cast<long long>(tid_),
                 static_cast<unsigned long long>(fault.addr));
    } catch (const ThreadKilled&) {
        status = 137; // 128 + SIGKILL: this kernel was fail-stopped
    } catch (const msg::LocalNodeDead&) {
        status = 137; // kernel died under a syscall in flight
    }
    exit_status_ = status;

    kernel::Kernel& k = machine_.kernel(kernel_id_);
    if (k.node().dead()) {
        // Fail-stop exit: no wire traffic. The origin reaps the group
        // record when the failure detector fires and publishes the ctid
        // word through the Machine's thread_lost hook.
        mmu_->detach();
        k.sys_exit_local(*task_, status);
        return;
    }

    // CLEARTID: publish exit and wake joiners through the normal guest
    // futex machinery (glibc's pthread_join protocol).
    try {
        mmu_->write<std::uint32_t>(ctid_, 1);
        mmu_->flush_charges();
        k.sys_futex_wake(*task_, ctid_, std::numeric_limits<std::uint32_t>::max());
    } catch (const mem::GuestFault&) {
        RKO_WARN("tid %lld: ctid word unreachable at exit", static_cast<long long>(tid_));
    } catch (const msg::LocalNodeDead&) {
        // Kernel fail-stopped mid-exit; fall through to the local path.
    }

    mmu_->detach();
    if (k.node().dead()) {
        k.sys_exit_local(*task_, status);
        return;
    }
    try {
        k.sys_exit(*task_, status);
    } catch (const msg::LocalNodeDead&) {
        k.sys_exit_local(*task_, status);
    }
}

// ---------------------------------------------------------------------------
// Guest
// ---------------------------------------------------------------------------

Guest::Guest(Machine& machine, Thread& thread) : machine_(machine), thread_(thread) {}

kernel::Kernel& Guest::k() { return machine_.kernel(thread_.kernel_id_); }

task::Task& Guest::t() {
    RKO_ASSERT(thread_.task_ != nullptr);
    return *thread_.task_;
}

Pid Guest::pid() const { return thread_.process_.pid(); }

Nanos Guest::now() const { return machine_.engine().now(); }

void Guest::place(topo::KernelId kernel_id) {
    topo::KernelId where = kernel_id;
    for (;;) {
        bind(where);
        machine_.kernel(where).sched().acquire(t());
        if (t().on_core()) {
            check_killed();
            // Working-set pre-copy (DESIGN.md §15): a freshly migrated-in
            // task drains the hot-page list its checkpoint shipped — one
            // blocking pull round on the guest's own actor (handlers are
            // leaves; they cannot rpc). Runs here so every arrival path
            // (api migrate and balancer steal chains alike) warms up.
            if (t().pending_workset_count != 0) {
                kernel::Kernel& kern = machine_.kernel(where);
                kern.pages().workset_prefault(kern.site(pid()), t());
            }
            return;
        }
        // A balancer claimed this task while it sat queued: acquire returned
        // core-less with the task marked kMigrating. The thread ships itself
        // (the fiber cannot travel on a wire) and queues at the target.
        const topo::KernelId dest = t().balance_target;
        RKO_ASSERT(t().state == task::TaskState::kMigrating);
        RKO_ASSERT(dest >= 0 && dest != where);
        thread_.mmu_->detach();
        if (!machine_.kernel(where).migration().migrate_out(t(), dest, nullptr)) {
            // Destination refused or died mid-transfer; the task record
            // stayed here (kMigrating, hint cleared) — re-acquire locally.
            continue;
        }
        where = dest;
    }
}

void Guest::check_killed() {
    if (thread_.kill_requested_) throw ThreadKilled{};
}

void Guest::rebalance_checkpoint() {
    const topo::KernelId dest = t().balance_target;
    if (dest < 0) return;
    t().balance_target = -1;
    if (dest == thread_.kernel_id_) return;
    k().metrics().counter("balance.hint_migrations").inc();
    migrate(dest);
}

void Guest::bind(topo::KernelId kernel_id) {
    thread_.kernel_id_ = kernel_id;
    kernel::Kernel& kern = machine_.kernel(kernel_id);
    task::Task* task = kern.find_task(thread_.tid_);
    RKO_ASSERT_MSG(task != nullptr, "no task record on the kernel being bound");
    thread_.task_ = task;
    auto& site = kern.site(pid());
    thread_.mmu_->attach(&site.space(),
                         [&kern, task](mem::Vaddr va, std::uint32_t access) {
                             return kern.handle_fault(*task, va, access);
                         });
}

mem::Vaddr Guest::mmap(std::uint64_t length, std::uint32_t prot) {
    thread_.mmu_->flush_charges();
    return k().sys_mmap(t(), length, prot);
}

int Guest::munmap(mem::Vaddr addr, std::uint64_t length) {
    thread_.mmu_->flush_charges();
    return k().sys_munmap(t(), addr, length);
}

int Guest::mprotect(mem::Vaddr addr, std::uint64_t length, std::uint32_t prot) {
    thread_.mmu_->flush_charges();
    return k().sys_mprotect(t(), addr, length, prot);
}

std::uint32_t Guest::cas_u32(mem::Vaddr addr, std::uint32_t expect,
                             std::uint32_t desired) {
    return rmw_u32(addr, [expect, desired](std::uint32_t v) {
        return v == expect ? desired : v;
    });
}

int Guest::futex_wait(mem::Vaddr uaddr, std::uint32_t val) {
    thread_.mmu_->flush_charges();
    check_killed();
    const int rc = k().sys_futex_wait(t(), uaddr, val);
    // A drain (or kill) wakes waiters spuriously with a balance hint or
    // the kill flag set; honor them before returning to guest code.
    check_killed();
    rebalance_checkpoint();
    return rc;
}

int Guest::futex_wait_for(mem::Vaddr uaddr, std::uint32_t val, Nanos timeout) {
    thread_.mmu_->flush_charges();
    check_killed();
    const int rc = k().sys_futex_wait(t(), uaddr, val, timeout);
    check_killed();
    rebalance_checkpoint();
    return rc;
}

mem::Vaddr Guest::brk(mem::Vaddr new_brk) {
    thread_.mmu_->flush_charges();
    return k().sys_brk(t(), new_brk);
}

mem::Vaddr Guest::sbrk(std::int64_t delta) {
    const mem::Vaddr old_brk = brk(0);
    if (delta == 0) return old_brk;
    const mem::Vaddr target = old_brk + static_cast<mem::Vaddr>(delta);
    return brk(target) == target ? old_brk : 0;
}

int Guest::futex_wake(mem::Vaddr uaddr, std::uint32_t max_wake) {
    thread_.mmu_->flush_charges();
    return k().sys_futex_wake(t(), uaddr, max_wake);
}

void Guest::mutex_lock(mem::Vaddr addr) {
    // Drepper, "Futexes Are Tricky", mutex 3: 0 free, 1 locked, 2 contended.
    std::uint32_t c = cas_u32(addr, 0, 1);
    if (c == 0) return;
    do {
        if (c == 2 || cas_u32(addr, 1, 2) != 0) {
            futex_wait(addr, 2);
        }
        c = cas_u32(addr, 0, 2);
    } while (c != 0);
}

void Guest::mutex_unlock(mem::Vaddr addr) {
    const std::uint32_t old = rmw_u32(addr, [](std::uint32_t) { return 0u; });
    if (old == 2) futex_wake(addr, 1);
}

void Guest::barrier_wait(mem::Vaddr addr, std::uint32_t nthreads) {
    const mem::Vaddr count_addr = addr;
    const mem::Vaddr gen_addr = addr + 4;
    const std::uint32_t gen = read<std::uint32_t>(gen_addr);
    const std::uint32_t arrived = rmw_u32(count_addr, [](std::uint32_t v) {
        return v + 1;
    });
    if (arrived + 1 == nthreads) {
        write<std::uint32_t>(count_addr, 0);
        rmw_u32(gen_addr, [](std::uint32_t v) { return v + 1; });
        futex_wake(gen_addr, std::numeric_limits<std::uint32_t>::max());
        return;
    }
    while (read<std::uint32_t>(gen_addr) == gen) {
        futex_wait(gen_addr, gen);
    }
}

Thread& Guest::spawn(GuestFn fn, topo::KernelId where) {
    thread_.mmu_->flush_charges();
    return thread_.process_.spawn_common(std::move(fn), where, this);
}

void Guest::join(Thread& thread) {
    while (read<std::uint32_t>(thread.ctid()) == 0) {
        futex_wait(thread.ctid(), 0);
    }
}

core::MigrationBreakdown Guest::migrate(topo::KernelId dest) {
    core::MigrationBreakdown breakdown{};
    if (dest == thread_.kernel_id_) return breakdown;
    thread_.mmu_->detach();
    kernel::Kernel& src = k();
    if (!src.migration().migrate_out(t(), dest, &breakdown)) {
        // Destination dead or refusing: resume locally as if the
        // migration had never been requested.
        place(thread_.kernel_id_);
        return breakdown;
    }
    const Nanos resumed_from = now();

    // place() rather than bind+acquire: a balancer may claim the task while
    // it waits in the destination runqueue, in which case the thread keeps
    // following the steal chain and resumes wherever it lands.
    place(dest);
    kernel::Kernel& dst = k();
    breakdown.resume = now() - resumed_from;
    breakdown.total += breakdown.resume;
    dst.metrics().histogram("migration.resume_ns").add(breakdown.resume);
    if (trace::Tracer* tr = trace::active(machine_.engine())) {
        tr->span(machine_.engine(), dst.id(), "migrate.resume", resumed_from,
                 static_cast<std::uint64_t>(t().tid));
    }
    return breakdown;
}

void Guest::yield() {
    thread_.mmu_->flush_charges();
    k().sys_yield(t());
    check_killed();
    rebalance_checkpoint();
}

void Guest::compute(Nanos ns) {
    thread_.mmu_->flush_charges();
    constexpr Nanos kQuantum = 100'000; // preemption checkpoints every 100 us
    while (ns > 0) {
        const Nanos chunk = std::min(ns, kQuantum);
        thread_.actor_->sleep_for(chunk);
        ns -= chunk;
        check_killed();
        k().sched().maybe_preempt(t());
        rebalance_checkpoint();
    }
}

std::uint32_t Guest::global_task_count() {
    thread_.mmu_->flush_charges();
    return k().ssi().global_task_count(pid());
}

std::vector<core::TaskInfo> Guest::ps() {
    thread_.mmu_->flush_charges();
    return k().ssi().ps(pid());
}

topo::KernelId Guest::least_loaded_kernel() {
    thread_.mmu_->flush_charges();
    return k().ssi().least_loaded_kernel();
}

void Guest::flush_timing() { thread_.mmu_->flush_charges(); }

} // namespace rko::api
