#include "rko/api/machine.hpp"

#include "rko/base/log.hpp"
#include "rko/check/invariants.hpp"
#include "rko/core/page_owner.hpp"

namespace rko::api {

Machine::Machine(MachineConfig config)
    : config_(config),
      topo_(config.ncores, config.nkernels),
      phys_(config.nkernels, config.frames_per_kernel) {
    RKO_ASSERT_MSG(config.nkernels <= 32,
                   "holder masks are 32-bit; up to 32 kernels supported");
    if (config_.shuffle_ties) {
        // Before any actor is created so every event carries a shuffle key.
        engine_.enable_tie_shuffle(config_.seed * 0x9e3779b97f4a7c15ULL + 1);
    }
    tracer_ = std::make_unique<trace::Tracer>(config_.nkernels, config_.trace);
    engine_.set_tracer(tracer_.get());
    fabric_ = std::make_unique<msg::Fabric>(engine_, config_.costs, config_.nkernels,
                                            config_.fabric);
    kernels_.reserve(static_cast<std::size_t>(config_.nkernels));
    for (topo::KernelId k = 0; k < config_.nkernels; ++k) {
        kernels_.push_back(std::make_unique<kernel::Kernel>(
            engine_, topo_, config_.costs, phys_, *fabric_, k));
    }
    for (auto& k : kernels_) {
        k->pages().set_read_replication(config_.read_replication);
        k->pages().set_prefetch_window(config_.prefetch_window);
        k->install_services([this](Tid tid) -> sim::Actor* {
            Thread* thread = thread_of(tid);
            return thread == nullptr ? nullptr : thread->actor();
        });
        if (config_.balance.policy != balance::Policy::kNone) {
            k->install_balancer(config_.balance);
        }
    }
    fabric_->start_all();
    for (auto& k : kernels_) {
        if (k->balancer() != nullptr) k->balancer()->start();
    }
}

Machine::~Machine() {
    for (auto& k : kernels_) {
        if (k->balancer() != nullptr) k->balancer()->request_stop();
    }
    fabric_->request_stop_all();
    engine_.run();
    for (auto& k : kernels_) {
        if (k->balancer() != nullptr && !k->balancer()->stopped()) {
            RKO_WARN("machine torn down with a live balancer actor");
        }
    }
    if (!fabric_->all_stopped()) {
        RKO_WARN("machine torn down with live messaging actors");
    }
    if (config_.check) {
        check::Registry::builtin().enforce(*this, "teardown");
    }
    if (tracer_->enabled() && !tracer_->config().path.empty()) {
        tracer_->write_chrome_trace_file(tracer_->config().path);
    }
    engine_.set_tracer(nullptr);
    // Threads (owned by processes) must be destroyed before the engine;
    // processes_ members are destroyed before engine_ per declaration order
    // ... which is the reverse: engine_ declared before processes_, so
    // processes_ (and their actors) die first. Correct as declared.
}

kernel::Kernel& Machine::kernel(topo::KernelId id) {
    RKO_ASSERT(id >= 0 && id < config_.nkernels);
    return *kernels_[static_cast<std::size_t>(id)];
}

Process& Machine::create_process(topo::KernelId origin) {
    RKO_ASSERT_MSG(sim::current_engine() == nullptr,
                   "create_process is a host-side (boot) operation");
    kernel::Kernel& k = kernel(origin);
    const Pid pid = k.alloc_pid();
    // Home the process: master site + empty thread group at the origin.
    k.ensure_site(pid, origin);
    k.site(pid).group().replica_mask |= 1u << origin;
    processes_.push_back(std::make_unique<Process>(*this, pid, origin));
    return *processes_.back();
}

trace::MetricsRegistry Machine::collect_metrics() {
    trace::MetricsRegistry merged;
    merged.merge_from(tracer_->merged_metrics());
    for (const auto& k : kernels_) {
        merged.merge_from(k->metrics());
        merged.gauge("sched.rq_lock_wait_ns").add(static_cast<double>(k->sched().rq_lock_wait()));
        merged.gauge("mem.mmap_lock_wait_ns").add(static_cast<double>(k->mmap_lock_wait_time()));
    }
    for (topo::KernelId k = 0; k < config_.nkernels; ++k) {
        msg::Node& node = fabric_->node(k);
        merged.counter("msg.dispatched").inc(node.total_dispatched());
        merged.histogram("msg.delivery_ns").merge(node.delivery_latency());
        merged.counter("msg.scatter.batches").inc(node.scatter_batches());
        merged.counter("msg.scatter.posts").inc(node.scatter_posts());
        merged.histogram("msg.scatter.fanout").merge(node.scatter_fanout());
        merged.histogram("msg.scatter.wait_ns").merge(node.scatter_wait());
    }
    for (topo::KernelId src = 0; src < config_.nkernels; ++src) {
        for (topo::KernelId dst = 0; dst < config_.nkernels; ++dst) {
            if (src == dst) continue;
            const msg::Channel& ch = fabric_->channel(src, dst);
            merged.counter("msg.sent").inc(ch.sent());
            merged.counter("msg.bytes").inc(ch.bytes_sent());
            merged.gauge("msg.backpressure_ns").add(static_cast<double>(ch.backpressure_time()));
            const std::string prefix = "msg.k" + std::to_string(src) + "_to_k" +
                                       std::to_string(dst) + ".";
            merged.counter(prefix + "sent").inc(ch.sent());
            merged.counter(prefix + "bytes").inc(ch.bytes_sent());
        }
    }
    return merged;
}

Nanos Machine::run() {
    const Nanos t = engine_.run();
    if (config_.check && engine_.idle()) {
        check::Registry::builtin().enforce(*this, "run-idle");
    }
    return t;
}

Nanos Machine::run_until(Nanos deadline) { return engine_.run_until(deadline); }

void Machine::register_thread(Tid tid, Thread* thread) {
    RKO_ASSERT(!threads_.contains(tid));
    threads_[tid] = thread;
}

void Machine::unregister_thread(Tid tid) { threads_.erase(tid); }

Thread* Machine::thread_of(Tid tid) {
    auto it = threads_.find(tid);
    return it == threads_.end() ? nullptr : it->second;
}

} // namespace rko::api
