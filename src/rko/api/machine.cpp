#include "rko/api/machine.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <vector>

#include "rko/base/log.hpp"
#include "rko/check/invariants.hpp"
#include "rko/core/dfutex.hpp"
#include "rko/core/page_owner.hpp"
#include "rko/race/race.hpp"
#include "rko/task/sched.hpp"

namespace rko::api {

Machine::Machine(MachineConfig config)
    : config_(config),
      topo_(config.ncores, config.nkernels),
      phys_(config.nkernels, config.frames_per_kernel) {
    RKO_ASSERT_MSG(config.nkernels <= topo::kMaxKernels,
                   "holder masks are topo::KernelMask bits wide");
    // Each machine gets a clean race-detector slate: one process often runs
    // many machines (tests, explore sweeps) and findings must not leak
    // between them.
    if (race::enabled()) race::reset();
    if (config_.shuffle_ties) {
        // Before any actor is created so every event carries a shuffle key.
        engine_.enable_tie_shuffle(config_.seed * 0x9e3779b97f4a7c15ULL + 1);
    }
    tracer_ = std::make_unique<trace::Tracer>(config_.nkernels, config_.trace);
    engine_.set_tracer(tracer_.get());
    fabric_ = std::make_unique<msg::Fabric>(engine_, config_.costs, config_.nkernels,
                                            config_.fabric);
    kernels_.reserve(static_cast<std::size_t>(config_.nkernels));
    for (topo::KernelId k = 0; k < config_.nkernels; ++k) {
        kernels_.push_back(std::make_unique<kernel::Kernel>(
            engine_, topo_, config_.costs, phys_, *fabric_, k));
    }
    // Home map: every kernel boots with the same shard count and the same
    // eligible set (the boot membership minus deferred hot-join targets).
    // Membership events shrink it identically everywhere (rko/elastic).
    RKO_ASSERT_MSG(config_.home_shards >= 1, "home_shards must be >= 1");
    topo::KernelMask home_eligible = 0;
    for (topo::KernelId k = 0; k < config_.nkernels; ++k) {
        if (config_.elastic.enabled &&
            (config_.elastic.deferred_mask & topo::kbit(k)) != 0) {
            continue;
        }
        home_eligible |= topo::kbit(k);
    }
    for (auto& k : kernels_) {
        k->home_map().init(config_.home_shards, home_eligible);
        k->pages().set_read_replication(config_.read_replication);
        k->pages().set_prefetch_window(config_.prefetch_window);
        k->pages().set_workset_push(config_.workset_push);
        k->futex().set_hierarchy(config_.futex_hierarchy);
        k->futex().set_handoff_cap(config_.futex_handoff_cap);
        k->install_services([this](Tid tid) -> sim::Actor* {
            Thread* thread = thread_of(tid);
            return thread == nullptr ? nullptr : thread->actor();
        });
        if (config_.balance.policy != balance::Policy::kNone) {
            k->install_balancer(config_.balance);
        }
        if (config_.elastic.enabled) {
            k->install_elastic(config_.elastic);
            install_elastic_hooks(*k);
        }
    }
    fabric_->start_all();
    for (auto& k : kernels_) {
        if (k->elastic() != nullptr) k->elastic()->start();
        // Deferred-boot kernels (hot-join targets) sit parted with no
        // balancer until Machine::join_kernel starts one.
        const bool deferred =
            config_.elastic.enabled &&
            (config_.elastic.deferred_mask & topo::kbit(k->id())) != 0;
        if (k->balancer() != nullptr && !deferred) k->balancer()->start();
    }
}

void Machine::install_elastic_hooks(kernel::Kernel& k) {
    kernel::Kernel* kp = &k;
    // Kill: unwind every guest fiber hosted here. Runs on the reaper actor
    // (actor context — Scheduler::wake may sleep). Collect tids first: the
    // woken threads erase themselves from the task map as they exit.
    k.elastic()->set_thread_killer([this, kp] {
        std::vector<Tid> tids;
        kp->for_each_task([&tids](const task::Task& t) {
            if (t.state == task::TaskState::kExited ||
                t.state == task::TaskState::kShadow) {
                return;
            }
            tids.push_back(t.tid);
        });
        for (const Tid tid : tids) {
            task::Task* t = kp->find_task(tid);
            if (t == nullptr || t->state == task::TaskState::kExited ||
                t->state == task::TaskState::kShadow) {
                continue;
            }
            if (Thread* thread = thread_of(tid)) thread->request_kill();
            // Blocked threads need a spurious wake to reach the kill check;
            // queued/running ones hit it at their next guest operation.
            if (t->state == task::TaskState::kBlocked) kp->sched().wake(*t);
        }
    });
    // Reap (at the origin): a member died with its kernel — publish its
    // CLEARTID word through the normal coherence machinery so joiners
    // parked on the ctid futex unblock with the usual protocol.
    k.elastic()->set_thread_lost([this, kp](Pid pid, Tid tid) {
        Thread* thread = thread_of(tid);
        if (thread == nullptr || !kp->has_site(pid)) return;
        auto& site = kp->site(pid);
        const mem::Vaddr ctid = thread->ctid();
        const mem::Vaddr page = ctid & ~static_cast<mem::Vaddr>(mem::kPageSize - 1);
        mem::Vma vma;
        {
            const mem::Vma* found = site.space().vmas().find(ctid);
            if (found == nullptr) return; // process already torn down
            vma = *found;
        }
        for (int attempt = 0; attempt < 16; ++attempt) {
            if (kp->pages().acquire(site, vma, page,
                                    mem::kProtRead | mem::kProtWrite) !=
                mem::Mmu::FaultResult::kFixed) {
                return;
            }
            const mem::Pte* pte = site.space().page_table().find(page);
            if (pte == nullptr || !pte->present ||
                (pte->prot & mem::kProtWrite) == 0) {
                continue; // transaction retried; fault again
            }
            const std::uint32_t one = 1;
            std::memcpy(kp->phys().frame_ptr(pte->paddr) + (ctid - page), &one,
                        sizeof one);
            kp->futex().wake_at_origin(site, pid, ctid,
                                       std::numeric_limits<std::uint32_t>::max());
            return;
        }
    });
}

void Machine::kill_kernel(topo::KernelId id) {
    kernel::Kernel& k = kernel(id);
    RKO_ASSERT_MSG(k.elastic() != nullptr, "kill_kernel requires elastic.enabled");
    k.for_each_site([](core::ProcessSite& site) {
        RKO_ASSERT_MSG(!site.is_origin(),
                       "origin kernels are immortal: cannot kill a process home");
    });
    k.elastic()->request_kill();
}

void Machine::drain_kernel(topo::KernelId id) {
    kernel::Kernel& k = kernel(id);
    RKO_ASSERT_MSG(k.elastic() != nullptr, "drain_kernel requires elastic.enabled");
    k.for_each_site([](core::ProcessSite& site) {
        RKO_ASSERT_MSG(!site.is_origin(),
                       "origin kernels are immortal: cannot drain a process home");
    });
    k.elastic()->request_drain();
}

void Machine::join_kernel(topo::KernelId id) {
    kernel::Kernel& k = kernel(id);
    RKO_ASSERT_MSG(k.elastic() != nullptr, "join_kernel requires elastic.enabled");
    k.elastic()->request_join();
}

bool Machine::is_killed(topo::KernelId id) {
    kernel::Kernel& k = kernel(id);
    return k.elastic() != nullptr &&
           k.elastic()->peer_state(id) != elastic::PeerState::kAlive;
}

Machine::~Machine() {
    for (auto& k : kernels_) {
        if (k->balancer() != nullptr) k->balancer()->request_stop();
        if (k->elastic() != nullptr) k->elastic()->request_stop();
    }
    fabric_->request_stop_all();
    engine_.run();
    for (auto& k : kernels_) {
        if (k->balancer() != nullptr && !k->balancer()->stopped()) {
            RKO_WARN("machine torn down with a live balancer actor");
        }
    }
    if (!fabric_->all_stopped()) {
        RKO_WARN("machine torn down with live messaging actors");
    }
    if (config_.check) {
        check::Registry::builtin().enforce(*this, "teardown");
    }
    if (tracer_->enabled() && !tracer_->config().path.empty()) {
        tracer_->write_chrome_trace_file(tracer_->config().path);
    }
    engine_.set_tracer(nullptr);
    // Threads (owned by processes) must be destroyed before the engine;
    // processes_ members are destroyed before engine_ per declaration order
    // ... which is the reverse: engine_ declared before processes_, so
    // processes_ (and their actors) die first. Correct as declared.
}

kernel::Kernel& Machine::kernel(topo::KernelId id) {
    RKO_ASSERT(id >= 0 && id < config_.nkernels);
    return *kernels_[static_cast<std::size_t>(id)];
}

Process& Machine::create_process(topo::KernelId origin) {
    RKO_ASSERT_MSG(sim::current_engine() == nullptr,
                   "create_process is a host-side (boot) operation");
    kernel::Kernel& k = kernel(origin);
    const Pid pid = k.alloc_pid();
    // Home the process: master site + empty thread group at the origin.
    k.ensure_site(pid, origin);
    k.site(pid).group().replica_mask |= topo::kbit(origin);
    // With sharded homes, every eligible kernel may own directory shards
    // for this process, so it needs a site (directory storage + VMA
    // replica) and a slot in the replica mask (so destructive-op
    // broadcasts reach it) from birth.
    if (k.home_map().sharded()) {
        for (topo::KernelMask m = k.home_map().eligible(); m != 0; m &= m - 1) {
            const auto h = static_cast<topo::KernelId>(std::countr_zero(m));
            if (h == origin) continue;
            kernel(h).ensure_site(pid, origin);
            k.site(pid).group().replica_mask |= topo::kbit(h);
        }
    }
    processes_.push_back(std::make_unique<Process>(*this, pid, origin));
    return *processes_.back();
}

trace::MetricsRegistry Machine::collect_metrics() {
    trace::MetricsRegistry merged;
    merged.merge_from(tracer_->merged_metrics());
    for (const auto& k : kernels_) {
        merged.merge_from(k->metrics());
        merged.gauge("sched.rq_lock_wait_ns").add(static_cast<double>(k->sched().rq_lock_wait()));
        merged.gauge("mem.mmap_lock_wait_ns").add(static_cast<double>(k->mmap_lock_wait_time()));
        // Per-kernel directory-transaction share (rko/home): under sharded
        // uniform fault load the origin's gauge drops toward 1/N of the
        // merged home.msgs counter.
        merged.gauge("home.msgs_per_kernel.k" + std::to_string(k->id()))
            .add(static_cast<double>(k->pages().home_msgs()));
    }
    for (topo::KernelId k = 0; k < config_.nkernels; ++k) {
        msg::Node& node = fabric_->node(k);
        merged.counter("msg.dispatched").inc(node.total_dispatched());
        merged.histogram("msg.delivery_ns").merge(node.delivery_latency());
        merged.counter("msg.scatter.batches").inc(node.scatter_batches());
        merged.counter("msg.scatter.posts").inc(node.scatter_posts());
        merged.counter("msg.dead_letters").inc(node.dead_letters());
        merged.counter("msg.rpc_failures").inc(node.rpc_failures());
        merged.histogram("msg.scatter.fanout").merge(node.scatter_fanout());
        merged.histogram("msg.scatter.wait_ns").merge(node.scatter_wait());
    }
    for (topo::KernelId src = 0; src < config_.nkernels; ++src) {
        for (topo::KernelId dst = 0; dst < config_.nkernels; ++dst) {
            if (src == dst) continue;
            const msg::Channel& ch = fabric_->channel(src, dst);
            merged.counter("msg.sent").inc(ch.sent());
            merged.counter("msg.bytes").inc(ch.bytes_sent());
            merged.gauge("msg.backpressure_ns").add(static_cast<double>(ch.backpressure_time()));
            const std::string prefix = "msg.k" + std::to_string(src) + "_to_k" +
                                       std::to_string(dst) + ".";
            merged.counter(prefix + "sent").inc(ch.sent());
            merged.counter(prefix + "bytes").inc(ch.bytes_sent());
        }
    }
    return merged;
}

Nanos Machine::run() {
    const Nanos t = engine_.run();
    if (config_.check && engine_.idle()) {
        check::Registry::builtin().enforce(*this, "run-idle");
    }
    return t;
}

Nanos Machine::run_until(Nanos deadline) { return engine_.run_until(deadline); }

void Machine::register_thread(Tid tid, Thread* thread) {
    RKO_ASSERT(!threads_.contains(tid));
    threads_[tid] = thread;
}

void Machine::unregister_thread(Tid tid) { threads_.erase(tid); }

Thread* Machine::thread_of(Tid tid) {
    auto it = threads_.find(tid);
    return it == threads_.end() ? nullptr : it->second;
}

} // namespace rko::api
