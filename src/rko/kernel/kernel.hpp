// One kernel instance of the replicated-kernel OS.
//
// A Kernel owns the per-kernel resources (scheduler for its core group,
// frame allocator over its physical partition, messaging endpoint, futex
// table shard, task table, process sites) and exposes the syscall facade
// guest threads call. The cross-kernel behaviour lives in the core/
// services, one instance per kernel, installed at boot.
//
// The SMP baseline is the nkernels == 1 configuration: the same structures
// then serve all cores — one frame-allocator lock, one futex table, one
// runqueue, one mmap lock per process — which is precisely the shared-
// data-structure contention the paper measures against.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "rko/base/stats.hpp"
#include "rko/core/process.hpp"
#include "rko/home/home.hpp"
#include "rko/mem/mmu.hpp"
#include "rko/mem/frame_alloc.hpp"
#include "rko/mem/phys.hpp"
#include "rko/msg/fabric.hpp"
#include "rko/task/sched.hpp"
#include "rko/task/task.hpp"
#include "rko/topo/topology.hpp"
#include "rko/trace/metrics.hpp"

namespace rko::core {
class VmaServer;
class PageOwner;
class DFutex;
class ThreadGroups;
class Migration;
class Ssi;
} // namespace rko::core

namespace rko::balance {
class Balancer;
struct BalanceConfig;
} // namespace rko::balance

namespace rko::elastic {
class Elastic;
struct ElasticConfig;
} // namespace rko::elastic

namespace rko::kernel {

class Kernel {
public:
    /// Resolves a tid to its execution actor — the documented "backdoor"
    /// through which a migrated thread's fiber is adopted by the
    /// destination kernel (the protocol messages carry the architectural
    /// context; the fiber object itself cannot travel on a wire).
    using ActorResolver = std::function<sim::Actor*(Tid)>;

    Kernel(sim::Engine& engine, const topo::Topology& topo,
           const topo::CostModel& costs, mem::PhysMem& phys, msg::Fabric& fabric,
           topo::KernelId id);
    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;
    ~Kernel();

    /// Registers all message handlers. Must run before Fabric::start_all().
    void install_services(ActorResolver resolver);

    /// Creates and installs this kernel's load balancer (registers kSteal).
    /// Must run after install_services and before Fabric::start_all(); the
    /// tick actor itself is booted separately with Balancer::start(). Only
    /// called when the machine's balance policy is not kNone, so none-policy
    /// runs carry zero balancer state.
    void install_balancer(const balance::BalanceConfig& config);
    balance::Balancer* balancer() { return balancer_.get(); }

    /// Creates and installs this kernel's elasticity service (registers
    /// kPing / kMembershipUpdate / kElasticEvict). Same boot window as
    /// install_balancer; the reaper actor boots with Elastic::start().
    /// Only called when ElasticConfig::enabled, so static-membership runs
    /// carry zero elastic state.
    void install_elastic(const elastic::ElasticConfig& config);
    elastic::Elastic* elastic() { return elastic_.get(); }

    // --- Accessors ---
    topo::KernelId id() const { return id_; }
    sim::Engine& engine() { return engine_; }
    const topo::Topology& topology() const { return topo_; }
    const topo::CostModel& costs() const { return costs_; }
    mem::PhysMem& phys() { return phys_; }
    mem::FrameAllocator& frames() { return frames_; }
    msg::Node& node() { return node_; }
    msg::Fabric& fabric() { return fabric_; }
    task::Scheduler& sched() { return sched_; }
    base::Counters& counters() { return counters_; }
    /// This kernel's metrics registry. Services register named counters /
    /// histograms at construction; Machine::collect_metrics merges all
    /// kernels' registries into the machine-wide view.
    trace::MetricsRegistry& metrics() { return metrics_; }
    const trace::MetricsRegistry& metrics() const { return metrics_; }

    /// This kernel's view of the sharded home map (rko/home). Initialized
    /// at boot by the Machine; shrunk by elastic membership events. All
    /// live kernels see identical state (DESIGN.md §14).
    home::Map& home_map() { return home_map_; }
    const home::Map& home_map() const { return home_map_; }

    core::VmaServer& vma() { return *vma_; }
    core::PageOwner& pages() { return *pages_; }
    core::DFutex& futex() { return *futex_; }
    core::ThreadGroups& groups() { return *groups_; }
    core::Migration& migration() { return *migration_; }
    core::Ssi& ssi() { return *ssi_; }
    sim::Actor* resolve_actor(Tid tid) { return resolver_(tid); }

    // --- Process sites & tasks ---
    bool has_site(Pid pid) const { return sites_.contains(pid); }
    core::ProcessSite& site(Pid pid);
    core::ProcessSite& ensure_site(Pid pid, topo::KernelId origin);
    /// Drops a replica site of a dead process, defensively freeing any
    /// leftover frames its page table still references.
    void drop_site(Pid pid);
    task::Task* find_task(Tid tid);
    task::Task& add_task(std::unique_ptr<task::Task> task);
    std::size_t task_count() const { return tasks_.size(); }
    std::size_t live_task_count() const;

    /// Total queueing time on this kernel's per-process mmap locks.
    Nanos mmap_lock_wait_time() const;

    /// Visits every task record on this kernel (SSI listings).
    void for_each_task(const std::function<void(const task::Task&)>& fn) const {
        for (const auto& [tid, t] : tasks_) fn(*t);
    }

    /// Mutable task visit (the balancer's affinity scan and fault-counter
    /// decay). Same deterministic tid order as for_each_task.
    void for_each_task_mut(const std::function<void(task::Task&)>& fn) {
        for (auto& [tid, t] : tasks_) fn(*t);
    }

    /// Visits every process site on this kernel (invariant checkers).
    void for_each_site(const std::function<void(core::ProcessSite&)>& fn) {
        for (auto& [pid, site] : sites_) fn(*site);
    }

    /// Global ids from this kernel's static range (Popcorn-style
    /// per-kernel PID ranges keep allocation message-free).
    Pid alloc_pid() { return id_range_base() + (next_id_ += 2); }
    static constexpr Pid kIdRangeSpan = 1'000'000;
    Pid id_range_base() const { return (static_cast<Pid>(id_) + 1) * kIdRangeSpan; }

    // --- Syscall facade (called on the current task's actor) ---
    mem::Vaddr sys_mmap(task::Task& t, std::uint64_t length, std::uint32_t prot);
    int sys_munmap(task::Task& t, mem::Vaddr addr, std::uint64_t length);
    int sys_mprotect(task::Task& t, mem::Vaddr addr, std::uint64_t length,
                     std::uint32_t prot);
    int sys_futex_wait(task::Task& t, mem::Vaddr uaddr, std::uint32_t val,
                       Nanos timeout = -1);
    mem::Vaddr sys_brk(task::Task& t, mem::Vaddr new_brk);
    int sys_futex_wake(task::Task& t, mem::Vaddr uaddr, std::uint32_t max_wake);
    void sys_yield(task::Task& t);
    void sys_exit(task::Task& t, int status);
    /// Exit on a killed kernel: local bookkeeping only (no group messages —
    /// the node is dead and the origin's reaper owns the group record).
    void sys_exit_local(task::Task& t, int status);

    /// The page-fault entry (installed as the task MMU's handler).
    mem::Mmu::FaultResult handle_fault(task::Task& t, mem::Vaddr va,
                                       std::uint32_t access);

    /// Charges the syscall entry cost; every sys_* calls it first.
    void syscall_entry();

private:
    sim::Engine& engine_;
    const topo::Topology& topo_;
    const topo::CostModel& costs_;
    mem::PhysMem& phys_;
    msg::Fabric& fabric_;
    msg::Node& node_;
    topo::KernelId id_;
    mem::FrameAllocator frames_;
    trace::MetricsRegistry metrics_; ///< before sched_ and the services, which keep refs
    task::Scheduler sched_;
    base::Counters counters_;

    home::Map home_map_;
    std::map<Pid, std::unique_ptr<core::ProcessSite>> sites_;
    std::map<Tid, std::unique_ptr<task::Task>> tasks_;
    Pid next_id_ = 0;
    ActorResolver resolver_;

    std::unique_ptr<core::VmaServer> vma_;
    std::unique_ptr<core::PageOwner> pages_;
    std::unique_ptr<core::DFutex> futex_;
    std::unique_ptr<core::ThreadGroups> groups_;
    std::unique_ptr<core::Migration> migration_;
    std::unique_ptr<core::Ssi> ssi_;
    std::unique_ptr<balance::Balancer> balancer_; ///< null when policy kNone
    std::unique_ptr<elastic::Elastic> elastic_;   ///< null when not enabled
};

} // namespace rko::kernel
