#include "rko/kernel/kernel.hpp"

#include <utility>

#include "rko/balance/balance.hpp"
#include "rko/core/dfutex.hpp"
#include "rko/core/migration.hpp"
#include "rko/core/page_owner.hpp"
#include "rko/core/ssi.hpp"
#include "rko/core/thread_group.hpp"
#include "rko/core/vma_server.hpp"
#include "rko/elastic/elastic.hpp"

namespace rko::kernel {

Kernel::Kernel(sim::Engine& engine, const topo::Topology& topo,
               const topo::CostModel& costs, mem::PhysMem& phys, msg::Fabric& fabric,
               topo::KernelId id)
    : engine_(engine),
      topo_(topo),
      costs_(costs),
      phys_(phys),
      fabric_(fabric),
      node_(fabric.node(id)),
      id_(id),
      frames_(phys, id, costs),
      sched_(engine, costs, topo.cores_of(id), id, &metrics_) {
    vma_ = std::make_unique<core::VmaServer>(*this);
    pages_ = std::make_unique<core::PageOwner>(*this);
    futex_ = std::make_unique<core::DFutex>(*this);
    groups_ = std::make_unique<core::ThreadGroups>(*this);
    migration_ = std::make_unique<core::Migration>(*this);
    ssi_ = std::make_unique<core::Ssi>(*this);
}

Kernel::~Kernel() = default;

void Kernel::install_services(ActorResolver resolver) {
    resolver_ = std::move(resolver);
    vma_->install();
    pages_->install();
    futex_->install();
    groups_->install();
    migration_->install();
    ssi_->install();
}

void Kernel::install_balancer(const balance::BalanceConfig& config) {
    RKO_ASSERT(balancer_ == nullptr);
    balancer_ = std::make_unique<balance::Balancer>(*this, config);
    balancer_->install();
}

void Kernel::install_elastic(const elastic::ElasticConfig& config) {
    RKO_ASSERT(elastic_ == nullptr);
    elastic_ = std::make_unique<elastic::Elastic>(*this, config);
    elastic_->install();
}

core::ProcessSite& Kernel::site(Pid pid) {
    auto it = sites_.find(pid);
    RKO_ASSERT_MSG(it != sites_.end(), "no process site on this kernel");
    return *it->second;
}

core::ProcessSite& Kernel::ensure_site(Pid pid, topo::KernelId origin) {
    auto it = sites_.find(pid);
    if (it != sites_.end()) return *it->second;
    auto site = std::make_unique<core::ProcessSite>(pid, id_, origin);
    auto& ref = *site;
    sites_.emplace(pid, std::move(site));
    counters_.bump("sites_created");
    return ref;
}

void Kernel::drop_site(Pid pid) {
    auto it = sites_.find(pid);
    if (it == sites_.end()) return;
    core::ProcessSite& site = *it->second;
    RKO_ASSERT_MSG(site.local_tasks().empty(), "dropping a site with live tasks");
    // The teardown munmap should have emptied the page table already;
    // clean up defensively so a protocol miss cannot leak frames.
    std::vector<mem::Vaddr> stale;
    site.space().page_table().for_each_present(
        0, ~0ULL, [&](mem::Vaddr va, mem::Pte&) { stale.push_back(va); });
    for (const mem::Vaddr va : stale) {
        const mem::Pte old = site.space().page_table().clear(va);
        if (old.present) frames_.free(old.paddr);
    }
    if (!stale.empty()) site.space().bump_tlb_generation();
    sites_.erase(it);
    counters_.bump("sites_dropped");
}

task::Task* Kernel::find_task(Tid tid) {
    auto it = tasks_.find(tid);
    return it == tasks_.end() ? nullptr : it->second.get();
}

task::Task& Kernel::add_task(std::unique_ptr<task::Task> task) {
    RKO_ASSERT(task != nullptr);
    auto& ref = *task;
    RKO_ASSERT_MSG(!tasks_.contains(ref.tid), "duplicate tid on kernel");
    tasks_.emplace(ref.tid, std::move(task));
    return ref;
}

Nanos Kernel::mmap_lock_wait_time() const {
    Nanos total = 0;
    for (const auto& [pid, site] : sites_) {
        total += site->space().mmap_lock().wait_time();
    }
    return total;
}

std::size_t Kernel::live_task_count() const {
    std::size_t live = 0;
    for (const auto& [tid, task] : tasks_) {
        if (task->state != task::TaskState::kExited &&
            task->state != task::TaskState::kShadow) {
            ++live;
        }
    }
    return live;
}

void Kernel::syscall_entry() {
    sim::current_actor().sleep_for(costs_.syscall_entry);
}

mem::Vaddr Kernel::sys_mmap(task::Task& t, std::uint64_t length, std::uint32_t prot) {
    syscall_entry();
    counters_.bump("sys_mmap");
    return vma_->mmap(site(t.pid), length, prot);
}

int Kernel::sys_munmap(task::Task& t, mem::Vaddr addr, std::uint64_t length) {
    syscall_entry();
    counters_.bump("sys_munmap");
    return vma_->munmap(site(t.pid), addr, length);
}

int Kernel::sys_mprotect(task::Task& t, mem::Vaddr addr, std::uint64_t length,
                         std::uint32_t prot) {
    syscall_entry();
    counters_.bump("sys_mprotect");
    return vma_->mprotect(site(t.pid), addr, length, prot);
}

int Kernel::sys_futex_wait(task::Task& t, mem::Vaddr uaddr, std::uint32_t val,
                           Nanos timeout) {
    syscall_entry();
    counters_.bump("sys_futex_wait");
    return futex_->wait(t, site(t.pid), uaddr, val, timeout);
}

mem::Vaddr Kernel::sys_brk(task::Task& t, mem::Vaddr new_brk) {
    syscall_entry();
    counters_.bump("sys_brk");
    return vma_->brk(site(t.pid), new_brk);
}

int Kernel::sys_futex_wake(task::Task& t, mem::Vaddr uaddr, std::uint32_t max_wake) {
    syscall_entry();
    counters_.bump("sys_futex_wake");
    return futex_->wake(t, site(t.pid), uaddr, max_wake);
}

void Kernel::sys_yield(task::Task& t) {
    syscall_entry();
    sched_.yield(t);
}

void Kernel::sys_exit(task::Task& t, int status) {
    syscall_entry();
    counters_.bump("sys_exit");
    groups_->task_exited(t, status);
    sched_.exit(t);
}

void Kernel::sys_exit_local(task::Task& t, int status) {
    syscall_entry();
    counters_.bump("sys_exit_local");
    t.exit_status = status;
    if (has_site(t.pid)) site(t.pid).local_tasks().erase(t.tid);
    sched_.exit(t);
}

mem::Mmu::FaultResult Kernel::handle_fault(task::Task& t, mem::Vaddr va,
                                           std::uint32_t access) {
    counters_.bump("page_faults");
    core::ProcessSite& s = site(t.pid);
    mem::Vma vma;
    if (!vma_->ensure_vma(s, va, &vma)) return mem::Mmu::FaultResult::kSegv;
    if ((vma.prot & access) != access) return mem::Mmu::FaultResult::kSegv;
    return pages_->acquire(s, vma, mem::page_floor(va), access, &t);
}

} // namespace rko::kernel
