#include "rko/elastic/elastic.hpp"

#include <bit>
#include <string>
#include <vector>

#include "rko/balance/balance.hpp"
#include "rko/base/assert.hpp"
#include "rko/core/dfutex.hpp"
#include "rko/core/page_owner.hpp"
#include "rko/core/process.hpp"
#include "rko/core/ssi.hpp"
#include "rko/core/thread_group.hpp"
#include "rko/home/home.hpp"
#include "rko/kernel/kernel.hpp"
#include "rko/msg/fabric.hpp"
#include "rko/msg/node.hpp"
#include "rko/task/sched.hpp"
#include "rko/trace/trace.hpp"

namespace rko::elastic {

const char* peer_state_name(PeerState state) {
    switch (state) {
    case PeerState::kAlive: return "alive";
    case PeerState::kParted: return "parted";
    case PeerState::kDead: return "dead";
    }
    return "?";
}

Elastic::Elastic(kernel::Kernel& k, const ElasticConfig& config)
    : k_(k),
      config_(config),
      probes_(k.metrics().counter("elastic.probes")),
      deaths_declared_(k.metrics().counter("elastic.deaths_declared")),
      peer_deaths_(k.metrics().counter("elastic.peer_deaths")),
      pages_rehomed_(k.metrics().counter("elastic.pages_rehomed")),
      pages_lost_(k.metrics().counter("elastic.pages_lost")),
      futex_orphans_(k.metrics().counter("elastic.futex_orphans")),
      threads_lost_(k.metrics().counter("elastic.threads_lost")),
      drain_evacuated_(k.metrics().counter("elastic.drain_evacuated")),
      drain_pages_evicted_(k.metrics().counter("elastic.drain_pages_evicted")),
      joins_(k.metrics().counter("elastic.joins")),
      home_rebuilds_(k.metrics().counter("elastic.home_rebuilds")),
      home_entries_rebuilt_(k.metrics().counter("elastic.home_entries_rebuilt")) {
    RKO_ASSERT(config_.lease_misses >= 1);
    last_seen_.fill(-1);
    for (topo::KernelId kid = 0; kid < topo::kMaxKernels; ++kid) {
        if ((config_.deferred_mask & topo::kbit(kid)) != 0) {
            state_[static_cast<std::size_t>(kid)] = PeerState::kParted;
        }
    }
}

Elastic::~Elastic() = default;

void Elastic::install() {
    k_.node().register_handler(
        msg::MsgType::kPing, msg::HandlerClass::kInline,
        [this](msg::Node& node, msg::MessagePtr m) { on_ping(node, std::move(m)); });
    k_.node().register_handler(
        msg::MsgType::kMembershipUpdate, msg::HandlerClass::kInline,
        [this](msg::Node& node, msg::MessagePtr m) { on_membership(node, std::move(m)); });
    k_.node().register_handler(
        msg::MsgType::kElasticEvict, msg::HandlerClass::kBlocking,
        [this](msg::Node& node, msg::MessagePtr m) { on_evict(node, std::move(m)); });
}

void Elastic::start() {
    RKO_ASSERT(reaper_ == nullptr);
    reaper_ = std::make_unique<sim::Actor>(
        k_.engine(), "reaper.k" + std::to_string(k_.id()),
        [this](sim::Actor& self) { reaper_body(self); });
    reaper_->start();
}

void Elastic::request_stop() {
    stop_ = true;
    ring_reaper();
}

bool Elastic::stopped() const { return reaper_ == nullptr || reaper_->finished(); }

void Elastic::ring_reaper() {
    if (reaper_ != nullptr && !reaper_->finished()) reaper_->unpark();
}

Nanos Elastic::balance_period() const {
    const balance::Balancer* b = const_cast<kernel::Kernel&>(k_).balancer();
    return b != nullptr ? b->config().period : 50'000;
}

Nanos Elastic::lease_duration() const {
    return static_cast<Nanos>(config_.lease_misses) * balance_period();
}

void Elastic::note_peer_seen(topo::KernelId peer) {
    if (peer < 0 || peer >= topo::kMaxKernels) return;
    if (state_[static_cast<std::size_t>(peer)] != PeerState::kAlive) return;
    last_seen_[static_cast<std::size_t>(peer)] = k_.engine().now();
}

void Elastic::check_leases() {
    if (k_.node().dead()) return;
    membership_shadow_.on_read(); // kRacyOk: recorded, never flagged
    const Nanos lease = lease_duration();
    for (const topo::KernelId peer : k_.fabric().peers_of(k_.id())) {
        if (state_[static_cast<std::size_t>(peer)] != PeerState::kAlive) continue;
        const Nanos seen = last_seen_[static_cast<std::size_t>(peer)];
        if (seen < 0) continue; // no lease until first gossip heard
        if (k_.engine().now() - seen <= lease) continue;
        // Silence alone cannot distinguish dead from idle (idle balancers
        // park and stop gossiping), so probe before declaring: a live but
        // idle kernel's dispatcher always echoes the ping.
        probes_.inc();
        msg::RpcStatus st = msg::RpcStatus::kOk;
        auto reply = k_.node().rpc_timed(
            peer, msg::make_message(msg::MsgType::kPing, msg::MsgKind::kRequest),
            balance_period(), &st);
        if (reply != nullptr) {
            last_seen_[static_cast<std::size_t>(peer)] = k_.engine().now();
            continue;
        }
        declare_dead(peer, /*broadcast=*/true);
    }
}

void Elastic::declare_dead(topo::KernelId subject, bool broadcast) {
    if (subject == k_.id()) return;
    if (state_[static_cast<std::size_t>(subject)] != PeerState::kAlive) return;
    state_[static_cast<std::size_t>(subject)] = PeerState::kDead;
    membership_shadow_.on_write();
    peer_deaths_.inc();
    // Fail the fast path first: pending rpcs to the corpse resume with
    // kPeerDead and future sends drop, before any re-homing begins.
    k_.node().set_peer_dead(subject);
    // Sharded homes: stop routing directory traffic at the corpse NOW
    // (inline with the state flip) — inherited shards answer kRetry until
    // the reaper's census rebuild completes.
    note_home_removed(subject);
    if (trace::Tracer* tr = trace::active(k_.engine())) {
        tr->instant(k_.engine(), k_.id(), "elastic.peer_dead",
                    static_cast<std::uint64_t>(subject));
    }
    if (broadcast) {
        deaths_declared_.inc();
        broadcast_membership(core::MembershipEvent::kDead, subject);
    }
    dead_queue_.push_back(subject);
    ring_reaper();
}

void Elastic::broadcast_membership(core::MembershipEvent event,
                                   topo::KernelId subject) {
    const core::MembershipUpdateMsg update{subject, event, k_.id()};
    for (const topo::KernelId peer : k_.fabric().peers_of(k_.id())) {
        if (peer == subject) continue;
        if (state_[static_cast<std::size_t>(peer)] == PeerState::kDead) continue;
        // Parted peers still listen: they need a current view to rejoin.
        k_.node().send(peer,
                       msg::make_message(msg::MsgType::kMembershipUpdate,
                                         msg::MsgKind::kOneway, update));
    }
}

void Elastic::note_home_removed(topo::KernelId subject) {
    home::Map& map = k_.home_map();
    if (!map.sharded()) return;
    if ((map.eligible() & topo::kbit(subject)) == 0) return; // already out
    const topo::KernelMask before = map.eligible();
    map.remove_kernel(subject);
    if (k_.node().dead()) return; // a corpse inherits nothing
    bool queued = false;
    k_.for_each_site([&](core::ProcessSite& site) {
        for (int s = 0; s < map.shards(); ++s) {
            if (home::Map::owner_in(site.pid(), s, before) != subject) continue;
            if (map.owner_of(site.pid(), s) != k_.id()) continue;
            site.set_home_rebuilding(s, true);
            home_rebuild_queue_.push_back(HomeRebuild{site.pid(), s, subject});
            queued = true;
        }
    });
    if (queued) ring_reaper();
}

void Elastic::process_home_rebuilds() {
    while (!home_rebuild_queue_.empty()) {
        const HomeRebuild job = home_rebuild_queue_.front();
        home_rebuild_queue_.pop_front();
        if (k_.node().dead()) continue;
        if (!k_.has_site(job.pid)) continue; // process reaped meanwhile
        core::ProcessSite& site = k_.site(job.pid);
        home_rebuilds_.inc();
        home_entries_rebuilt_.inc(
            k_.pages().rebuild_home_shard(site, job.shard, job.from));
        site.set_home_rebuilding(job.shard, false);
        if (trace::Tracer* tr = trace::active(k_.engine())) {
            tr->instant(k_.engine(), k_.id(), "elastic.home_rebuild",
                        static_cast<std::uint64_t>(job.shard));
        }
    }
}

void Elastic::on_ping(msg::Node& node, msg::MessagePtr m) {
    if (m->hdr.kind == msg::MsgKind::kRequest) {
        node.reply(*m, msg::make_message(msg::MsgType::kPing, msg::MsgKind::kReply));
    }
}

void Elastic::on_membership(msg::Node& node, msg::MessagePtr m) {
    (void)node;
    const auto& update = m->payload_as<core::MembershipUpdateMsg>();
    const auto subject = static_cast<std::size_t>(update.subject);
    if (update.subject == k_.id()) return;
    switch (update.event) {
    case core::MembershipEvent::kDead:
        declare_dead(update.subject, /*broadcast=*/false);
        break;
    case core::MembershipEvent::kParted:
        if (state_[subject] == PeerState::kAlive) {
            state_[subject] = PeerState::kParted;
            membership_shadow_.on_write();
            // The node stays reachable (it answers census/vma traffic for
            // straggling messages); it is only removed from placement.
            // Home shards it owned move to survivors just as on death —
            // except its PTE census is still answerable, so nothing is lost.
            note_home_removed(update.subject);
            if (trace::Tracer* tr = trace::active(k_.engine())) {
                tr->instant(k_.engine(), k_.id(), "elastic.peer_parted",
                            static_cast<std::uint64_t>(update.subject));
            }
        }
        break;
    case core::MembershipEvent::kJoin:
        if (state_[subject] != PeerState::kAlive) {
            state_[subject] = PeerState::kAlive;
            membership_shadow_.on_write();
            k_.node().set_peer_alive(update.subject);
            // Lease grace: stamp now so the joiner is not probed before its
            // first gossip lands.
            last_seen_[subject] = k_.engine().now();
            if (trace::Tracer* tr = trace::active(k_.engine())) {
                tr->instant(k_.engine(), k_.id(), "elastic.peer_join",
                            static_cast<std::uint64_t>(update.subject));
            }
            if (k_.balancer() != nullptr) k_.balancer()->doorbell();
        }
        break;
    }
}

void Elastic::on_evict(msg::Node& node, msg::MessagePtr m) {
    const auto& req = m->payload_as<core::ElasticEvictReq>();
    core::ElasticEvictResp resp{0};
    if (k_.has_site(req.pid)) {
        core::ProcessSite& site = k_.site(req.pid);
        if (site.is_origin() || k_.home_map().sharded()) {
            // Wait out a census rebuild: sweeping mid-rebuild would miss
            // the entries the census is about to install.
            for (int s = 0; s < k_.home_map().shards(); ++s) {
                while (site.home_rebuilding(s)) {
                    k_.engine().current().sleep_for(1000);
                }
            }
            resp.evicted = k_.pages().evict_holder(site, req.holder);
        }
        if (site.is_origin()) {
            // The parting kernel drops its site next; stop broadcasting VMA
            // updates at it.
            site.group().replica_mask &= ~topo::kbit(req.holder);
        }
    }
    node.reply(*m, msg::make_message(msg::MsgType::kElasticEvict,
                                     msg::MsgKind::kReply, resp));
}

void Elastic::request_kill() {
    kill_req_ = true;
    ring_reaper();
}

void Elastic::request_drain() {
    drain_req_ = true;
    ring_reaper();
}

void Elastic::request_join() {
    join_req_ = true;
    ring_reaper();
}

void Elastic::reaper_body(sim::Actor& self) {
    while (true) {
        if (kill_req_) {
            kill_req_ = false;
            do_kill(self);
        }
        if (join_req_) {
            join_req_ = false;
            do_join();
        }
        if (drain_req_) {
            drain_req_ = false;
            do_drain(self);
        }
        // Inherited home shards first: faults parked on kRetry against a
        // rebuilding shard unblock as soon as the census lands.
        process_home_rebuilds();
        while (!dead_queue_.empty()) {
            const topo::KernelId dead = dead_queue_.front();
            dead_queue_.pop_front();
            reap_dead(dead);
        }
        if (stop_) break;
        self.park();
    }
}

void Elastic::do_kill(sim::Actor& self) {
    if (k_.node().dead()) return; // already killed
    if (trace::Tracer* tr = trace::active(k_.engine())) {
        tr->instant(k_.engine(), k_.id(), "elastic.kill");
    }
    state_[static_cast<std::size_t>(k_.id())] = PeerState::kDead;
    membership_shadow_.on_write();
    // Fail-stop: the node black-holes from here on. Pending rpcs from this
    // kernel's fibers throw LocalNodeDead and unwind.
    k_.node().set_dead();
    // Kworkers parked on a directory busy bit (this kernel serves home
    // transactions with sharded homes) hold no rpc to fail — wake them so
    // they observe the dead node and unwind too.
    k_.for_each_site([&](core::ProcessSite& site) {
        for (auto& shard : site.dir_shards()) shard.busy_wait.notify_all();
    });
    // Unwind every hosted guest fiber: running threads throw at their next
    // checkpoint, blocked ones are woken into it. They exit *locally* (no
    // group messages) — the origin's reaper is the bookkeeper of record.
    if (thread_killer_) thread_killer_();
    if (k_.balancer() != nullptr) k_.balancer()->request_stop();
    // Wait for the doomed fibers to drain, then free what they leave: the
    // frames belong to this kernel's partition, so survivors never need
    // them, but teardown audits expect dropped sites not to leak frames.
    while (k_.live_task_count() > 0) self.park_for(balance_period());
    drop_all_sites();
}

void Elastic::reap_dead(topo::KernelId dead) {
    if (k_.node().dead()) return; // corpses do not reap
    k_.node().set_peer_dead(dead); // idempotent; set at declaration already
    if (trace::Tracer* tr = trace::active(k_.engine())) {
        tr->instant(k_.engine(), k_.id(), "elastic.reap",
                    static_cast<std::uint64_t>(dead));
    }

    std::vector<Pid> origin_pids;
    k_.for_each_site([&](core::ProcessSite& site) {
        if (site.is_origin()) origin_pids.push_back(site.pid());
    });

    // 1. Page ownership: strip the dead holder from every directory entry
    //    of every process homed here. Surviving sharers (or the origin)
    //    keep the data; sole-copy pages are lost and refault as zero-fill.
    //    With sharded homes every local site may hold a directory slice,
    //    not just origin sites.
    std::vector<Pid> dir_pids;
    k_.for_each_site([&](core::ProcessSite& site) {
        if (site.is_origin() || k_.home_map().sharded()) {
            dir_pids.push_back(site.pid());
        }
    });
    for (const Pid pid : dir_pids) {
        const auto counts = k_.pages().rehome_dead(k_.site(pid), dead);
        pages_rehomed_.inc(counts.first);
        pages_lost_.inc(counts.second);
    }

    // 2. Futex table: dequeue the dead kernel's waiters — a grant to a
    //    corpse would be a lost wake for the bucket's surviving waiters.
    futex_orphans_.inc(
        static_cast<std::uint64_t>(k_.futex().remove_kernel_waiters(dead)));

    // 3. Thread groups: members located on the dead kernel died with it.
    //    The api hook publishes each one's CLEARTID word so joiners parked
    //    on it unblock through the normal futex path.
    for (const Pid pid : origin_pids) {
        core::ProcessSite& site = k_.site(pid);
        const std::vector<Tid> lost = k_.groups().reap_kernel(site, dead);
        for (const Tid tid : lost) {
            threads_lost_.inc();
            if (thread_lost_) thread_lost_(pid, tid);
        }
    }

    // 4. Migration imports whose fiber died on the dead kernel mid-flight
    //    (the kMigrate landed here but the sender's rpc wait was killed):
    //    retire the orphaned record so this kernel can still quiesce.
    std::vector<Tid> orphans;
    k_.for_each_task_mut([&](task::Task& t) {
        if (t.state != task::TaskState::kNew) return;
        if (t.actor == nullptr || !t.actor->finished()) return;
        orphans.push_back(t.tid);
    });
    for (const Tid tid : orphans) {
        task::Task* t = k_.find_task(tid);
        if (t == nullptr) continue;
        t->actor = nullptr;
        k_.groups().task_exited(*t, 137);
        t->state = task::TaskState::kExited;
    }
}

std::uint32_t Elastic::evacuate_once() {
    std::uint32_t moved = 0;
    // Queued threads: detach them; each ships itself through the normal
    // migration path when its core-less acquire returns.
    for (;;) {
        const topo::KernelId target = pick_target();
        if (target < 0) break;
        task::Task* t = k_.sched().steal_queued(0, target);
        if (t == nullptr) break;
        drain_evacuated_.inc();
        ++moved;
    }
    std::vector<Tid> tids;
    k_.for_each_task_mut([&](task::Task& t) { tids.push_back(t.tid); });
    for (const Tid tid : tids) {
        task::Task* t = k_.find_task(tid);
        if (t == nullptr || t->shadow || t->actor == nullptr) continue;
        if (t->balance_target >= 0) continue; // already nudged
        const topo::KernelId target = pick_target();
        if (target < 0) break;
        switch (t->state) {
        case task::TaskState::kRunning:
            // Self-migrates at its next preemption checkpoint.
            t->balance_target = target;
            drain_evacuated_.inc();
            ++moved;
            break;
        case task::TaskState::kBlocked: {
            // Withdraw the waiter, then wake it spuriously (legal under the
            // futex contract); the post-wait checkpoint migrates it and it
            // re-waits over there. With the hierarchical tier the waiter
            // usually parks in this kernel's own convoy — withdraw it there
            // first (cancel_local also settles the origin's aggregate).
            // uaddr 0 = wildcard: only the waiting fiber knows its word.
            t->balance_target = target;
            if (k_.futex().cancel_local(t->pid, tid, t->origin)) {
                k_.sched().wake(*t);
                drain_evacuated_.inc();
                ++moved;
                break;
            }
            msg::RpcStatus st = msg::RpcStatus::kOk;
            auto reply = k_.node().rpc(
                t->origin,
                msg::make_message(msg::MsgType::kFutexCancel, msg::MsgKind::kRequest,
                                  core::FutexCancelReq{t->pid, tid, 0}),
                &st);
            if (reply == nullptr) break; // origin unreachable; its reap owns us
            if (reply->payload_as<core::FutexCancelResp>().removed) {
                k_.sched().wake(*t);
            }
            // !removed: a grant is already in flight and will wake it.
            drain_evacuated_.inc();
            ++moved;
            break;
        }
        default:
            break; // kNew/kMigrating resolve on their own; revisit next sweep
        }
    }
    return moved;
}

void Elastic::do_drain(sim::Actor& self) {
    if (k_.node().dead()) return;
    if (state_[static_cast<std::size_t>(k_.id())] != PeerState::kAlive) return;
    if (trace::Tracer* tr = trace::active(k_.engine())) {
        tr->instant(k_.engine(), k_.id(), "elastic.drain");
    }
    draining_ = true;
    if (k_.balancer() != nullptr) k_.balancer()->request_stop();
    // Final gossip row advertising zero capacity so peers neither push to
    // nor steal from a parting kernel while it evacuates.
    const core::LoadGossipMsg zero{k_.id(), 0, 0, 0, k_.engine().now()};
    for (const topo::KernelId peer : k_.fabric().peers_of(k_.id())) {
        if (state_[static_cast<std::size_t>(peer)] != PeerState::kAlive) continue;
        k_.node().send(peer, msg::make_message(msg::MsgType::kLoadGossip,
                                               msg::MsgKind::kOneway, zero));
    }
    while (k_.live_task_count() > 0) {
        evacuate_once();
        self.park_for(balance_period());
    }
    // Empty of threads. Hand every page copy back (pull dirty bytes home,
    // strip this holder from the directory), then drop the now-bare
    // replica sites.
    std::vector<Pid> pids;
    k_.for_each_site([&](core::ProcessSite& site) { pids.push_back(site.pid()); });
    if (!k_.home_map().sharded()) {
        for (const Pid pid : pids) {
            core::ProcessSite& site = k_.site(pid);
            RKO_ASSERT_MSG(!site.is_origin(), "drain of an origin kernel");
            const topo::KernelId origin = site.origin();
            msg::RpcStatus st = msg::RpcStatus::kOk;
            auto reply = msg::rpc_retry(
                k_.node(), origin,
                [&] {
                    return msg::make_message(msg::MsgType::kElasticEvict,
                                             msg::MsgKind::kRequest,
                                             core::ElasticEvictReq{pid, k_.id()});
                },
                4, balance_period() / 4 + 1, &st);
            if (reply != nullptr) {
                drain_pages_evicted_.inc(
                    reply->payload_as<core::ElasticEvictResp>().evicted);
            }
            k_.drop_site(pid);
        }
        state_[static_cast<std::size_t>(k_.id())] = PeerState::kParted;
        membership_shadow_.on_write();
        broadcast_membership(core::MembershipEvent::kParted, k_.id());
    } else {
        // Sharded homes: our directory shards must move to survivors while
        // our PTEs still exist (their census reconstructs the entries), and
        // only then can the copies themselves be swept.
        // 1. Stop serving new directory traffic (stale-routed faults get
        //    kRetry) and let in-flight transactions at our slices settle.
        k_.home_map().remove_kernel(k_.id());
        auto slices_busy = [&] {
            bool busy = false;
            k_.for_each_site([&](core::ProcessSite& site) {
                for (auto& shard : site.dir_shards()) {
                    if (!shard.pending.empty()) busy = true;
                    for (const auto& [vpn, e] : shard.entries) {
                        (void)vpn;
                        if (e.busy) busy = true;
                    }
                }
            });
            return busy;
        };
        while (slices_busy()) self.park_for(balance_period());
        // 2. Announce the part: survivors inherit our shards and census
        //    everyone's PTEs — including ours, which are still mapped.
        state_[static_cast<std::size_t>(k_.id())] = PeerState::kParted;
        membership_shadow_.on_write();
        broadcast_membership(core::MembershipEvent::kParted, k_.id());
        // 3. Every surviving home sweeps our copies out of its slice (the
        //    handler waits out a mid-flight census rebuild first).
        for (const Pid pid : pids) {
            core::ProcessSite& site = k_.site(pid);
            RKO_ASSERT_MSG(!site.is_origin(), "drain of an origin kernel");
            topo::KernelMask targets =
                (k_.home_map().eligible() | topo::kbit(site.origin())) &
                ~topo::kbit(k_.id());
            for (; targets != 0; targets &= targets - 1) {
                const auto peer =
                    static_cast<topo::KernelId>(std::countr_zero(targets));
                if (state_[static_cast<std::size_t>(peer)] == PeerState::kDead) {
                    continue;
                }
                msg::RpcStatus st = msg::RpcStatus::kOk;
                auto reply = msg::rpc_retry(
                    k_.node(), peer,
                    [&] {
                        return msg::make_message(
                            msg::MsgType::kElasticEvict, msg::MsgKind::kRequest,
                            core::ElasticEvictReq{pid, k_.id()});
                    },
                    4, balance_period() / 4 + 1, &st);
                if (reply != nullptr) {
                    drain_pages_evicted_.inc(
                        reply->payload_as<core::ElasticEvictResp>().evicted);
                }
            }
            k_.drop_site(pid);
        }
    }
    draining_ = false;
    if (trace::Tracer* tr = trace::active(k_.engine())) {
        tr->instant(k_.engine(), k_.id(), "elastic.parted");
    }
}

void Elastic::do_join() {
    if (k_.node().dead()) return; // killed kernels cannot rejoin
    if (trace::Tracer* tr = trace::active(k_.engine())) {
        tr->instant(k_.engine(), k_.id(), "elastic.join");
    }
    state_[static_cast<std::size_t>(k_.id())] = PeerState::kAlive;
    membership_shadow_.on_write();
    joins_.inc();
    const Nanos now = k_.engine().now();
    for (const topo::KernelId peer : k_.fabric().peers_of(k_.id())) {
        const auto p = static_cast<std::size_t>(peer);
        if (state_[p] == PeerState::kDead) continue;
        k_.node().send(peer,
                       msg::make_message(msg::MsgType::kMembershipUpdate,
                                         msg::MsgKind::kOneway,
                                         core::MembershipUpdateMsg{
                                             k_.id(), core::MembershipEvent::kJoin,
                                             k_.id()}));
        // Lease grace both ways: do not probe peers before hearing them.
        if (state_[p] == PeerState::kAlive) last_seen_[p] = now;
    }
    if (k_.balancer() != nullptr && k_.balancer()->stopped()) {
        k_.balancer()->start();
    }
}

topo::KernelId Elastic::pick_target() const {
    membership_shadow_.on_read(); // kRacyOk: recorded, never flagged
    topo::KernelId best = -1;
    std::uint32_t best_idle = 0;
    for (const topo::KernelId peer : k_.fabric().peers_of(k_.id())) {
        if (state_[static_cast<std::size_t>(peer)] != PeerState::kAlive) continue;
        const core::LoadEntry& e = k_.ssi().table_entry(peer);
        const std::uint32_t idle = e.stamp >= 0 ? e.idle_cores : 0;
        if (best < 0 || idle > best_idle) {
            best = peer;
            best_idle = idle;
        }
    }
    return best;
}

void Elastic::drop_all_sites() {
    std::vector<Pid> pids;
    k_.for_each_site([&](core::ProcessSite& site) { pids.push_back(site.pid()); });
    for (const Pid pid : pids) k_.drop_site(pid);
}

} // namespace rko::elastic
