// Kernel elasticity: failure, drain, and hot add/remove (DESIGN.md §11).
//
// Popcorn's companion work on fault tolerance treats each kernel's page
// ownership and futex registrations as *leases* that must be renewed over
// the messaging layer; a kernel that stops renewing is declared dead and
// its resources are re-homed by the survivors. This subsystem reproduces
// that shape on the simulated fabric:
//
//   - Leases ride the balance-gossip tick: every kLoadGossip arrival
//     re-stamps the sender's lease. A kernel silent for `lease_misses`
//     balance periods is probed with a timed kPing; a probe that times out
//     declares the peer dead (fail-stop — the sim kills a kernel by marking
//     its msg::Node dead, so a probe can never falsely fail).
//   - Death is broadcast (kMembershipUpdate) and each survivor's reaper
//     actor re-homes the dead kernel's footprint: directory entries are
//     stripped of the dead holder (origin or surviving sharers reclaim the
//     page; sole-copy pages are lost), its futex waiters are dequeued, its
//     group members are marked exited (joiners unblock through the normal
//     CLEARTID path), and its in-flight RPCs fail with kPeerDead.
//   - drain() evacuates a kernel instead: queued threads are re-queued on
//     peers, running threads get migration hints, blocked threads are
//     spuriously woken so they migrate at the post-wait checkpoint, and the
//     emptied kernel hands every page copy back to each origin
//     (kElasticEvict) before parting. A parted kernel keeps its node alive
//     and may later rejoin.
//   - join() (hot add) announces the kernel and boots its balancer, so
//     idle-steal starts pulling work within one balance period. Kernels in
//     ElasticConfig::deferred_mask boot parted for staggered hot-join runs.
//
// Only non-origin kernels may be killed or drained: the origin kernel of a
// process is immortal (Popcorn's home-kernel assumption) — it holds the
// master directory, group record, and futex table for its processes.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "rko/core/wire.hpp"
#include "rko/msg/message.hpp"
#include "rko/race/race.hpp"
#include "rko/sim/actor.hpp"
#include "rko/topo/topology.hpp"
#include "rko/trace/metrics.hpp"

namespace rko::kernel {
class Kernel;
}
namespace rko::msg {
class Node;
}

namespace rko::elastic {

/// One kernel's view of a peer's membership state.
enum class PeerState : std::uint8_t {
    kAlive = 0, ///< participating (default)
    kParted,    ///< left voluntarily (drained / deferred boot); node alive
    kDead,      ///< declared dead by the failure detector; node unreachable
};

const char* peer_state_name(PeerState state);

struct ElasticConfig {
    bool enabled = false;
    /// Balance periods a peer may stay silent before it is probed; a probe
    /// timing out (one more period) declares it dead.
    int lease_misses = 4;
    /// Kernels that boot parted (hot-join targets): their balancers are not
    /// started and every kernel excludes them from placement until
    /// Machine::join_kernel. Bit per kernel id.
    topo::KernelMask deferred_mask = 0;
};

/// Per-kernel membership-and-recovery service. Owns the reaper actor that
/// executes kill/drain/join requests and re-homes dead peers' resources.
class Elastic {
public:
    Elastic(kernel::Kernel& k, const ElasticConfig& config);
    Elastic(const Elastic&) = delete;
    Elastic& operator=(const Elastic&) = delete;
    ~Elastic();

    /// Registers kPing / kMembershipUpdate (inline) and kElasticEvict
    /// (blocking). Must precede Fabric::start_all.
    void install();

    /// Boots the reaper actor.
    void start();

    /// Asks the reaper to finish; it completes on a later engine run.
    void request_stop();
    bool stopped() const;

    // --- Membership views (balancer/SSI placement filters, checkers) ---
    PeerState peer_state(topo::KernelId kernel) const {
        return state_[static_cast<std::size_t>(kernel)];
    }
    bool alive(topo::KernelId kernel) const {
        return peer_state(kernel) == PeerState::kAlive;
    }
    bool draining() const { return draining_; }

    // --- Lease plumbing ---
    /// Gossip arrival (Ssi, on the dispatcher): renews `peer`'s lease.
    void note_peer_seen(topo::KernelId peer);
    /// Probes peers whose lease expired; declares non-responders dead.
    /// Runs on the balancer's tick actor (it may park in the probe rpc).
    void check_leases();
    Nanos lease_duration() const;

    // --- Host-side requests (api::Machine); executed by the reaper ---
    void request_kill();
    void request_drain();
    void request_join();

    // --- Hooks installed by the api layer (it owns the thread objects) ---
    /// Kill: unwind every live guest fiber hosted on this kernel.
    void set_thread_killer(std::function<void()> fn) {
        thread_killer_ = std::move(fn);
    }
    /// Reap, at the origin: a group member died with its kernel — publish
    /// its CLEARTID word so joiners unblock.
    void set_thread_lost(std::function<void(Pid, Tid)> fn) {
        thread_lost_ = std::move(fn);
    }

private:
    void reaper_body(sim::Actor& self);
    void ring_reaper();
    void do_kill(sim::Actor& self);
    void do_drain(sim::Actor& self);
    void do_join();
    /// Survivor-side re-homing of one dead peer's footprint.
    void reap_dead(topo::KernelId dead);
    void declare_dead(topo::KernelId subject, bool broadcast);
    /// Sharded homes (rko/home): removes `subject` from the local home map
    /// and flags every shard this kernel inherits as rebuilding, queueing
    /// the census rebuilds for the reaper. Inline-safe (pure state).
    void note_home_removed(topo::KernelId subject);
    /// Reaper-side: drains home_rebuild_queue_ (kHomeRebuild censuses).
    void process_home_rebuilds();
    void broadcast_membership(core::MembershipEvent event, topo::KernelId subject);
    /// One drain sweep: detach queued threads, hint running ones, spuriously
    /// wake blocked ones. Returns threads nudged.
    std::uint32_t evacuate_once();
    /// Best alive peer to evacuate onto (most idle cores per the gossip
    /// table; first alive peer when the table is cold). -1 = none alive.
    topo::KernelId pick_target() const;
    void drop_all_sites();
    Nanos balance_period() const;

    void on_ping(msg::Node& node, msg::MessagePtr m);
    void on_membership(msg::Node& node, msg::MessagePtr m);
    void on_evict(msg::Node& node, msg::MessagePtr m);

    kernel::Kernel& k_;
    ElasticConfig config_;
    std::unique_ptr<sim::Actor> reaper_;
    bool stop_ = false;
    bool kill_req_ = false;
    bool drain_req_ = false;
    bool join_req_ = false;
    bool draining_ = false;
    std::array<PeerState, static_cast<std::size_t>(topo::kMaxKernels)> state_{};
    /// Membership views are *intentionally* lease-eventual (a placement
    /// decision may race a death declaration and every consumer tolerates
    /// that): kRacyOk documents it for the race detector.
    race::ShadowCell membership_shadow_{"elastic.membership",
                                        race::ShadowCell::Policy::kRacyOk};
    /// Virtual time each peer was last heard from; -1 = never (no lease yet).
    std::array<Nanos, static_cast<std::size_t>(topo::kMaxKernels)> last_seen_{};
    std::deque<topo::KernelId> dead_queue_;
    /// One inherited home shard awaiting its census rebuild.
    struct HomeRebuild {
        Pid pid;
        int shard;
        topo::KernelId from; ///< the removed previous owner
    };
    std::deque<HomeRebuild> home_rebuild_queue_;

    std::function<void()> thread_killer_;
    std::function<void(Pid, Tid)> thread_lost_;

    // Registry-backed ("elastic.*" in the kernel's MetricsRegistry).
    trace::Counter& probes_;          ///< lease probes sent
    trace::Counter& deaths_declared_; ///< deaths this kernel detected first
    trace::Counter& peer_deaths_;     ///< peers marked dead (any source)
    trace::Counter& pages_rehomed_;   ///< directory entries stripped of a dead holder
    trace::Counter& pages_lost_;      ///< sole-copy pages gone with their holder
    trace::Counter& futex_orphans_;   ///< dead kernels' waiters dequeued
    trace::Counter& threads_lost_;    ///< group members reaped with their kernel
    trace::Counter& drain_evacuated_; ///< threads nudged off a draining kernel
    trace::Counter& drain_pages_evicted_; ///< page copies handed home by drains
    trace::Counter& joins_;           ///< hot-joins performed by this kernel
    trace::Counter& home_rebuilds_;   ///< home shards inherited and rebuilt
    trace::Counter& home_entries_rebuilt_; ///< directory entries reconstructed
};

} // namespace rko::elastic
