#!/bin/sh
# Runs every bench binary (full sweeps), captures the output, and collects
# each bench's --json metrics (rko-metrics-v1, see bench/report.hpp) into
# BENCH_results.json.
set -e

BUILD_DIR="${BUILD_DIR:-./build}"
OUT_DIR="$BUILD_DIR/bench_out"
mkdir -p "$OUT_DIR"

BENCHES="bench_messaging bench_migration bench_spawn bench_pagefault \
         bench_mmap_scale bench_futex bench_apps bench_rebalance"

# Fail loudly up front if anything is missing, rather than half-way through
# a long run.
missing=0
for b in $BENCHES bench_primitives; do
  if [ ! -x "$BUILD_DIR/bench/$b" ]; then
    echo "error: bench binary not found: $BUILD_DIR/bench/$b" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "error: build the benches first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# The machine-wide home-shard default (rko/home). Each bench JSON records
# it as its top-level "home_shards" key, so merged results from different
# shard settings are distinguishable after the fact.
echo "RKO_HOME_SHARDS=${RKO_HOME_SHARDS:-1}"

# Extra flags (e.g. --quick for a smoke run) are passed through to every
# sim bench.
for b in $BENCHES; do
  echo "########## $b ##########"
  "$BUILD_DIR/bench/$b" --json="$OUT_DIR/$b.json" "$@"
  echo
done

echo "########## bench_primitives (host wall time) ##########"
"$BUILD_DIR/bench/bench_primitives" --benchmark_min_time=0.05

# Merge the per-bench documents into one {"bench_name": {...}, ...} object.
MERGED=BENCH_results.json
{
  printf '{\n'
  first=1
  for b in $BENCHES; do
    if [ ! -s "$OUT_DIR/$b.json" ]; then
      echo "error: $b did not write $OUT_DIR/$b.json" >&2
      exit 1
    fi
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    printf '"%s": ' "$b"
    cat "$OUT_DIR/$b.json"
  done
  printf '}\n'
} > "$MERGED"
echo "collected bench metrics: $MERGED"
