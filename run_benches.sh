#!/bin/sh
# Runs every bench binary (full sweeps) and captures the output.
set -e
for b in bench_messaging bench_migration bench_spawn bench_pagefault \
         bench_mmap_scale bench_futex bench_apps bench_rebalance; do
  echo "########## $b ##########"
  ./build/bench/$b
  echo
done
echo "########## bench_primitives (host wall time) ##########"
./build/bench/bench_primitives --benchmark_min_time=0.05
