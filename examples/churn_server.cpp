// Consolidated-server demo: the same population of independent worker
// processes on one machine, first under an SMP kernel (shared allocator,
// futex table, runqueue) and then under a replicated kernel. Prints the
// makespans and the lock-contention bill — the paper's headline effect,
// live.
//
//   $ ./churn_server
#include <cstdio>

#include "../bench/apps.hpp"
#include "rko/smp/smp.hpp"

using namespace rko;

int main() {
    apps::ChurnConfig config;
    config.nworkers = 24;
    config.iterations = 30;

    api::Machine smp_machine(smp::smp_config(24));
    const Nanos smp_time = apps::churn(smp_machine, config);
    const auto smp_bill = smp::contention_report(smp_machine);

    api::Machine pop_machine(smp::popcorn_config(24, 6));
    const Nanos pop_time = apps::churn(pop_machine, config);
    const auto pop_bill = smp::contention_report(pop_machine);

    std::printf("24 worker processes, mmap/touch/munmap + futex hand-offs\n\n");
    std::printf("%-22s %12s %18s\n", "configuration", "makespan", "lock contention");
    std::printf("%-22s %12s %18s\n", "SMP (1 kernel)",
                format_ns(smp_time).c_str(), format_ns(smp_bill.total()).c_str());
    std::printf("%-22s %12s %18s\n", "replicated (6 kernels)",
                format_ns(pop_time).c_str(), format_ns(pop_bill.total()).c_str());
    std::printf("\nspeedup: %.2fx   contention removed: %.1f%%\n",
                static_cast<double>(smp_time) / static_cast<double>(pop_time),
                100.0 * (1.0 - static_cast<double>(pop_bill.total()) /
                                   static_cast<double>(smp_bill.total() + 1)));
    return 0;
}
