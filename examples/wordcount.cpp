// Wordcount two ways: the same map/reduce job written (a) against the
// replicated-kernel single system image — ordinary shared-memory threads
// that happen to run on different kernels — and (b) against a Barrelfish-
// style multikernel, where the programmer must shard state into per-domain
// processes and shuffle counts through explicit URPC messages.
//
// Functionally identical output; the point is the programming-model gap
// the paper's design closes (and the modest cost it pays for it).
//
//   $ ./wordcount
#include <cstdio>

#include "rko/api/machine.hpp"
#include "rko/base/rng.hpp"
#include "rko/mk/multikernel.hpp"
#include "rko/smp/smp.hpp"

using namespace rko;
using namespace rko::time_literals;
using api::Guest;
using mem::kPageSize;
using mem::Vaddr;

namespace {

constexpr int kWorkers = 4;
constexpr std::uint32_t kWordsPerWorker = 8192;
constexpr std::uint32_t kVocabulary = 64; ///< distinct "words" (ids)

/// Deterministic "document": worker w's i-th word id.
std::uint32_t word_at(int worker, std::uint32_t i) {
    base::Rng rng(0x77a0dULL + static_cast<std::uint64_t>(worker) * 7919 + i);
    return static_cast<std::uint32_t>(rng.next() % kVocabulary);
}

} // namespace

int main() {
    std::printf("wordcount: %d workers x %u words, %u-word vocabulary\n\n",
                kWorkers, kWordsPerWorker, kVocabulary);

    // ---------------- (a) single system image (Popcorn) ----------------
    std::uint64_t ssi_checksum = 0;
    Nanos ssi_time = 0;
    {
        api::Machine machine(smp::popcorn_config(8, kWorkers));
        auto& process = machine.create_process(0);
        process.spawn(
            [&](Guest& g) {
                // Per-worker count arrays, page-aligned (DSM-friendly), plus
                // a final merged table.
                const std::uint64_t block = mem::page_ceil(kVocabulary * 8);
                const Vaddr counts = g.mmap(kWorkers * block);
                const Vaddr merged = g.mmap(block);
                const Nanos t0 = g.now();
                std::vector<api::Thread*> workers;
                for (int w = 1; w < kWorkers; ++w) {
                    workers.push_back(&g.spawn(
                        [&, w, block](Guest& wg) {
                            const Vaddr mine = counts + static_cast<Vaddr>(w) * block;
                            for (std::uint32_t i = 0; i < kWordsPerWorker; ++i) {
                                const Vaddr slot = mine + word_at(w, i) * 8;
                                wg.write<std::uint64_t>(
                                    slot, wg.read<std::uint64_t>(slot) + 1);
                            }
                        },
                        static_cast<topo::KernelId>(w)));
                }
                for (std::uint32_t i = 0; i < kWordsPerWorker; ++i) {
                    const Vaddr slot = counts + word_at(0, i) * 8;
                    g.write<std::uint64_t>(slot, g.read<std::uint64_t>(slot) + 1);
                }
                for (auto* worker : workers) g.join(*worker);
                // Reduce: plain shared-memory reads across kernels.
                for (std::uint32_t v = 0; v < kVocabulary; ++v) {
                    std::uint64_t total = 0;
                    for (int w = 0; w < kWorkers; ++w) {
                        total += g.read<std::uint64_t>(
                            counts + static_cast<Vaddr>(w) * block + v * 8);
                    }
                    g.write<std::uint64_t>(merged + v * 8, total);
                    ssi_checksum += total * (v + 1);
                }
                ssi_time = g.now() - t0;
            },
            0);
        machine.run();
        process.check_all_joined();
        std::printf("single-system image: %s, %llu messages under the hood\n",
                    format_ns(ssi_time).c_str(),
                    (unsigned long long)machine.total_messages());
    }

    // ---------------- (b) multikernel (explicit shuffle) ----------------
    std::uint64_t mk_checksum = 0;
    Nanos mk_time = 0;
    {
        api::Machine machine(smp::popcorn_config(8, kWorkers));
        mk::MultikernelApp app(machine);
        Nanos t0 = -1;
        // Workers 1..N-1 count locally and stream (word, count) pairs to
        // domain 0 over URPC.
        for (int w = 1; w < kWorkers; ++w) {
            app.spawn(static_cast<topo::KernelId>(w), [&app, w](Guest& g) {
                std::vector<std::uint64_t> local(kVocabulary, 0);
                const Vaddr scratch = g.mmap(kPageSize); // local working set
                for (std::uint32_t i = 0; i < kWordsPerWorker; ++i) {
                    const std::uint32_t v = word_at(w, i);
                    ++local[v];
                    g.write<std::uint32_t>(scratch, v); // modeled local work
                }
                auto& out = app.channel(static_cast<topo::KernelId>(w), 0);
                for (std::uint32_t v = 0; v < kVocabulary; ++v) {
                    struct Pair {
                        std::uint32_t word;
                        std::uint64_t count;
                    } pair{v, local[v]};
                    out.send_value(g, pair);
                }
            });
        }
        app.spawn(0, [&](Guest& g) {
            t0 = g.now();
            std::vector<std::uint64_t> merged(kVocabulary, 0);
            const Vaddr scratch = g.mmap(kPageSize);
            for (std::uint32_t i = 0; i < kWordsPerWorker; ++i) {
                const std::uint32_t v = word_at(0, i);
                ++merged[v];
                g.write<std::uint32_t>(scratch, v);
            }
            for (int w = 1; w < kWorkers; ++w) {
                auto& in = app.channel(static_cast<topo::KernelId>(w), 0);
                for (std::uint32_t v = 0; v < kVocabulary; ++v) {
                    struct Pair {
                        std::uint32_t word;
                        std::uint64_t count;
                    };
                    const auto pair = in.recv_value<Pair>(g);
                    merged[pair.word] += pair.count;
                }
            }
            for (std::uint32_t v = 0; v < kVocabulary; ++v) {
                mk_checksum += merged[v] * (v + 1);
            }
            mk_time = g.now() - t0;
        });
        machine.run();
        std::printf("multikernel (URPC):  %s, explicit shuffle in app code\n",
                    format_ns(mk_time).c_str());
    }

    std::printf("\nchecksums: ssi=%llu mk=%llu -> %s\n",
                (unsigned long long)ssi_checksum, (unsigned long long)mk_checksum,
                ssi_checksum == mk_checksum ? "MATCH" : "MISMATCH");
    return ssi_checksum == mk_checksum ? 0 : 1;
}
