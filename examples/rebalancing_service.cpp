// A long-running service rides the single system image: worker threads are
// created wherever requests arrive (kernel 0), then use the SSI load census
// to migrate themselves to idle kernels mid-computation. Prints the load
// picture before and after, and the per-thread migration breakdowns.
//
//   $ ./rebalancing_service
#include <cstdio>
#include <vector>

#include "rko/api/machine.hpp"
#include "rko/core/migration.hpp"
#include "rko/core/ssi.hpp"
#include "rko/smp/smp.hpp"

using namespace rko;
using namespace rko::time_literals;

int main() {
    api::Machine machine(smp::popcorn_config(16, 4));
    auto& process = machine.create_process(0);

    constexpr int kBurst = 12;
    std::vector<topo::KernelId> landed(kBurst, -1);

    for (int i = 0; i < kBurst; ++i) {
        process.spawn(
            [&, i](api::Guest& g) {
                // Phase 1: a little work where we were born (kernel 0).
                g.compute(50_us);
                // Phase 2: ask the SSI where the idle cores are and move.
                const topo::KernelId target = g.least_loaded_kernel();
                if (target != g.kernel()) {
                    const auto breakdown = g.migrate(target);
                    std::printf("[req %2d] moved k0 -> k%d in %s\n", i, g.kernel(),
                                format_ns(breakdown.total).c_str());
                }
                landed[static_cast<std::size_t>(i)] = g.kernel();
                // Phase 3: the bulk of the request, on the new kernel.
                g.compute(400_us);
            },
            0);
    }

    machine.run();
    process.check_all_joined();

    int per_kernel[4] = {0, 0, 0, 0};
    for (const auto k : landed) per_kernel[k]++;
    std::printf("\nfinal placement: k0=%d k1=%d k2=%d k3=%d (burst of %d)\n",
                per_kernel[0], per_kernel[1], per_kernel[2], per_kernel[3], kBurst);
    std::printf("makespan: %s  (4 cores/kernel; all-on-k0 would serialize)\n",
                format_ns(machine.now()).c_str());
    std::uint64_t migrations = 0;
    for (int k = 0; k < 4; ++k) {
        migrations += machine.kernel(k).migration().migrations_in();
    }
    std::printf("migrations executed: %llu\n", (unsigned long long)migrations);
    return 0;
}
