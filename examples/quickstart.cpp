// Quickstart: boot a replicated-kernel machine, run threads of ONE process
// on DIFFERENT kernels, share memory, synchronize with a futex mutex, and
// migrate a thread — the whole single-system-image surface in ~80 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "rko/api/machine.hpp"
#include "rko/core/page_owner.hpp"

using namespace rko;
using namespace rko::time_literals;

int main() {
    // 8 cores, partitioned into 4 kernels of 2 cores each.
    api::MachineConfig config;
    config.ncores = 8;
    config.nkernels = 4;
    api::Machine machine(config);

    // One process, homed on kernel 0. Its threads may run anywhere.
    auto& process = machine.create_process(0);

    mem::Vaddr counter = 0; // guest address of a shared page
    mem::Vaddr lock = 0;

    // Thread A starts on kernel 0: sets up shared memory, counts, then
    // migrates itself to kernel 2 and keeps going — same addresses, same
    // data, different kernel.
    auto& thread_a = process.spawn(
        [&](api::Guest& g) {
            counter = g.mmap(mem::kPageSize);
            lock = g.mmap(mem::kPageSize);
            for (int i = 0; i < 1000; ++i) {
                g.mutex_lock(lock);
                g.write<std::uint64_t>(counter, g.read<std::uint64_t>(counter) + 1);
                g.mutex_unlock(lock);
            }
            std::printf("[A] counted to %llu on kernel %d\n",
                        (unsigned long long)g.read<std::uint64_t>(counter), g.kernel());

            const auto breakdown = g.migrate(2);
            std::printf("[A] migrated to kernel %d in %s "
                        "(checkpoint %s, transfer %s, resume %s)\n",
                        g.kernel(), format_ns(breakdown.total).c_str(),
                        format_ns(breakdown.checkpoint).c_str(),
                        format_ns(breakdown.transfer).c_str(),
                        format_ns(breakdown.resume).c_str());

            for (int i = 0; i < 1000; ++i) {
                g.mutex_lock(lock);
                g.write<std::uint64_t>(counter, g.read<std::uint64_t>(counter) + 1);
                g.mutex_unlock(lock);
            }
        },
        /*kernel=*/0);

    // Thread B runs on kernel 1 the whole time, sharing the same pages.
    process.spawn(
        [&](api::Guest& g) {
            while (lock == 0) g.yield();
            for (int i = 0; i < 1000; ++i) {
                g.mutex_lock(lock);
                g.write<std::uint64_t>(counter, g.read<std::uint64_t>(counter) + 1);
                g.mutex_unlock(lock);
            }
            g.join(thread_a);
            std::printf("[B] final counter = %llu (expect 3000), kernel %d\n",
                        (unsigned long long)g.read<std::uint64_t>(counter), g.kernel());
        },
        /*kernel=*/1);

    machine.run();
    process.check_all_joined();

    std::printf("\nvirtual time: %s, inter-kernel messages: %llu (%llu KiB)\n",
                format_ns(machine.now()).c_str(),
                (unsigned long long)machine.total_messages(),
                (unsigned long long)(machine.total_message_bytes() / 1024));
    std::printf("remote page faults served: k0=%llu k1=%llu k2=%llu k3=%llu\n",
                (unsigned long long)machine.kernel(0).pages().remote_faults(),
                (unsigned long long)machine.kernel(1).pages().remote_faults(),
                (unsigned long long)machine.kernel(2).pages().remote_faults(),
                (unsigned long long)machine.kernel(3).pages().remote_faults());
    return 0;
}
