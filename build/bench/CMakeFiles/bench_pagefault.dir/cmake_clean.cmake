file(REMOVE_RECURSE
  "CMakeFiles/bench_pagefault.dir/bench_pagefault.cpp.o"
  "CMakeFiles/bench_pagefault.dir/bench_pagefault.cpp.o.d"
  "bench_pagefault"
  "bench_pagefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pagefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
