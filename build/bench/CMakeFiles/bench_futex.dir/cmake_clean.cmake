file(REMOVE_RECURSE
  "CMakeFiles/bench_futex.dir/bench_futex.cpp.o"
  "CMakeFiles/bench_futex.dir/bench_futex.cpp.o.d"
  "bench_futex"
  "bench_futex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_futex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
