# Empty dependencies file for bench_futex.
# This may be replaced when dependencies are built.
