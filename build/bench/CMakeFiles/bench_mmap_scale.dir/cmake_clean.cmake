file(REMOVE_RECURSE
  "CMakeFiles/bench_mmap_scale.dir/bench_mmap_scale.cpp.o"
  "CMakeFiles/bench_mmap_scale.dir/bench_mmap_scale.cpp.o.d"
  "bench_mmap_scale"
  "bench_mmap_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mmap_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
