file(REMOVE_RECURSE
  "CMakeFiles/bench_spawn.dir/bench_spawn.cpp.o"
  "CMakeFiles/bench_spawn.dir/bench_spawn.cpp.o.d"
  "bench_spawn"
  "bench_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
