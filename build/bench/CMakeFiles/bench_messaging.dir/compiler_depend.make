# Empty compiler generated dependencies file for bench_messaging.
# This may be replaced when dependencies are built.
