file(REMOVE_RECURSE
  "CMakeFiles/rko_tests.dir/test_apps.cpp.o"
  "CMakeFiles/rko_tests.dir/test_apps.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_base.cpp.o"
  "CMakeFiles/rko_tests.dir/test_base.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_baselines.cpp.o"
  "CMakeFiles/rko_tests.dir/test_baselines.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_core.cpp.o"
  "CMakeFiles/rko_tests.dir/test_core.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_mem.cpp.o"
  "CMakeFiles/rko_tests.dir/test_mem.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_msg.cpp.o"
  "CMakeFiles/rko_tests.dir/test_msg.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_property.cpp.o"
  "CMakeFiles/rko_tests.dir/test_property.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_sched.cpp.o"
  "CMakeFiles/rko_tests.dir/test_sched.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_sim.cpp.o"
  "CMakeFiles/rko_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_system.cpp.o"
  "CMakeFiles/rko_tests.dir/test_system.cpp.o.d"
  "CMakeFiles/rko_tests.dir/test_topo.cpp.o"
  "CMakeFiles/rko_tests.dir/test_topo.cpp.o.d"
  "rko_tests"
  "rko_tests.pdb"
  "rko_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rko_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
