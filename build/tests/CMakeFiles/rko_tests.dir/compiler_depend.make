# Empty compiler generated dependencies file for rko_tests.
# This may be replaced when dependencies are built.
