
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/rko_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_base.cpp" "tests/CMakeFiles/rko_tests.dir/test_base.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_base.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/rko_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/rko_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/rko_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_msg.cpp" "tests/CMakeFiles/rko_tests.dir/test_msg.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_msg.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/rko_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_sched.cpp" "tests/CMakeFiles/rko_tests.dir/test_sched.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_sched.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/rko_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/rko_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/rko_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/rko_tests.dir/test_topo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rko.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
