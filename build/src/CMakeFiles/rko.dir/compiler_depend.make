# Empty compiler generated dependencies file for rko.
# This may be replaced when dependencies are built.
