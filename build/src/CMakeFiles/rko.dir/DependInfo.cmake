
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rko/api/machine.cpp" "src/CMakeFiles/rko.dir/rko/api/machine.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/api/machine.cpp.o.d"
  "/root/repo/src/rko/api/process.cpp" "src/CMakeFiles/rko.dir/rko/api/process.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/api/process.cpp.o.d"
  "/root/repo/src/rko/base/log.cpp" "src/CMakeFiles/rko.dir/rko/base/log.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/base/log.cpp.o.d"
  "/root/repo/src/rko/base/stats.cpp" "src/CMakeFiles/rko.dir/rko/base/stats.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/base/stats.cpp.o.d"
  "/root/repo/src/rko/core/dfutex.cpp" "src/CMakeFiles/rko.dir/rko/core/dfutex.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/core/dfutex.cpp.o.d"
  "/root/repo/src/rko/core/migration.cpp" "src/CMakeFiles/rko.dir/rko/core/migration.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/core/migration.cpp.o.d"
  "/root/repo/src/rko/core/page_owner.cpp" "src/CMakeFiles/rko.dir/rko/core/page_owner.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/core/page_owner.cpp.o.d"
  "/root/repo/src/rko/core/ssi.cpp" "src/CMakeFiles/rko.dir/rko/core/ssi.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/core/ssi.cpp.o.d"
  "/root/repo/src/rko/core/thread_group.cpp" "src/CMakeFiles/rko.dir/rko/core/thread_group.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/core/thread_group.cpp.o.d"
  "/root/repo/src/rko/core/vma_server.cpp" "src/CMakeFiles/rko.dir/rko/core/vma_server.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/core/vma_server.cpp.o.d"
  "/root/repo/src/rko/kernel/kernel.cpp" "src/CMakeFiles/rko.dir/rko/kernel/kernel.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/kernel/kernel.cpp.o.d"
  "/root/repo/src/rko/mem/frame_alloc.cpp" "src/CMakeFiles/rko.dir/rko/mem/frame_alloc.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/mem/frame_alloc.cpp.o.d"
  "/root/repo/src/rko/mem/mmu.cpp" "src/CMakeFiles/rko.dir/rko/mem/mmu.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/mem/mmu.cpp.o.d"
  "/root/repo/src/rko/mem/pagetable.cpp" "src/CMakeFiles/rko.dir/rko/mem/pagetable.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/mem/pagetable.cpp.o.d"
  "/root/repo/src/rko/mem/phys.cpp" "src/CMakeFiles/rko.dir/rko/mem/phys.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/mem/phys.cpp.o.d"
  "/root/repo/src/rko/mem/vma.cpp" "src/CMakeFiles/rko.dir/rko/mem/vma.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/mem/vma.cpp.o.d"
  "/root/repo/src/rko/mk/multikernel.cpp" "src/CMakeFiles/rko.dir/rko/mk/multikernel.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/mk/multikernel.cpp.o.d"
  "/root/repo/src/rko/msg/channel.cpp" "src/CMakeFiles/rko.dir/rko/msg/channel.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/msg/channel.cpp.o.d"
  "/root/repo/src/rko/msg/fabric.cpp" "src/CMakeFiles/rko.dir/rko/msg/fabric.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/msg/fabric.cpp.o.d"
  "/root/repo/src/rko/msg/message.cpp" "src/CMakeFiles/rko.dir/rko/msg/message.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/msg/message.cpp.o.d"
  "/root/repo/src/rko/msg/node.cpp" "src/CMakeFiles/rko.dir/rko/msg/node.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/msg/node.cpp.o.d"
  "/root/repo/src/rko/sim/actor.cpp" "src/CMakeFiles/rko.dir/rko/sim/actor.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/sim/actor.cpp.o.d"
  "/root/repo/src/rko/sim/context.cpp" "src/CMakeFiles/rko.dir/rko/sim/context.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/sim/context.cpp.o.d"
  "/root/repo/src/rko/sim/engine.cpp" "src/CMakeFiles/rko.dir/rko/sim/engine.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/sim/engine.cpp.o.d"
  "/root/repo/src/rko/sim/sync.cpp" "src/CMakeFiles/rko.dir/rko/sim/sync.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/sim/sync.cpp.o.d"
  "/root/repo/src/rko/smp/smp.cpp" "src/CMakeFiles/rko.dir/rko/smp/smp.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/smp/smp.cpp.o.d"
  "/root/repo/src/rko/task/sched.cpp" "src/CMakeFiles/rko.dir/rko/task/sched.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/task/sched.cpp.o.d"
  "/root/repo/src/rko/topo/topology.cpp" "src/CMakeFiles/rko.dir/rko/topo/topology.cpp.o" "gcc" "src/CMakeFiles/rko.dir/rko/topo/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
