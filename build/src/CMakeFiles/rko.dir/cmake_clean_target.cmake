file(REMOVE_RECURSE
  "librko.a"
)
