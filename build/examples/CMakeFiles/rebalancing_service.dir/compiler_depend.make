# Empty compiler generated dependencies file for rebalancing_service.
# This may be replaced when dependencies are built.
