file(REMOVE_RECURSE
  "CMakeFiles/rebalancing_service.dir/rebalancing_service.cpp.o"
  "CMakeFiles/rebalancing_service.dir/rebalancing_service.cpp.o.d"
  "rebalancing_service"
  "rebalancing_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalancing_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
