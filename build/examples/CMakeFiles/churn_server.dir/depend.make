# Empty dependencies file for churn_server.
# This may be replaced when dependencies are built.
