file(REMOVE_RECURSE
  "CMakeFiles/churn_server.dir/churn_server.cpp.o"
  "CMakeFiles/churn_server.dir/churn_server.cpp.o.d"
  "churn_server"
  "churn_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
